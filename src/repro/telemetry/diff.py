"""Trace-diff engine: attribute a makespan delta to the ops that moved.

``repro bench compare`` can say *that* a run regressed; this module
says *why*.  :func:`diff_traces` aligns two frozen traces by stable
task identity, re-runs the critical-path analyzer on both sides, and
partitions the makespan delta into per-op, per-label, per-worker and
per-resource-class contributions — exactly, because critical-path
steps partition ``[0, makespan]`` on each side, so per-key on-path
deltas sum to the makespan delta with no residual.  The ranked
:class:`TraceDiff` renders as text ("shuffle_stitch path +31% on
workers s1,s3 explains 78% of the makespan delta"), JSON, and a
Chrome-trace overlay with base and candidate as separate processes.

:func:`diff_snapshots` is the benchmark-side sibling: it ranks the
metric deltas of a candidate :class:`~repro.bench.snapshot.
BenchSnapshot` against its baseline by severity (relative delta over
tolerance), which is what ``repro bench compare`` prints when a gate
fails and what ``repro diff --bench`` writes as a CI artifact.

Alignment is three-staged: exact task name (names are unique per
trace), then :func:`~repro.telemetry.critical_path.group_label` class
(instance-numbered segments collapsed) with per-class pairing in
start order, then an explicit ``unmatched`` bucket — disjoint task
sets still produce an honest report rather than a crash or a silent
drop.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.sim.trace import FrozenTrace, TaskRecord
from repro.telemetry.critical_path import (
    RESOURCE_CLASSES,
    WAIT_LABEL,
    CriticalPathReport,
    analyze_critical_path,
    class_deltas,
    group_label,
)

#: Alignment stages, in the order they are attempted.
ALIGN_BY_NAME = "name"
ALIGN_BY_CLASS = "class"

#: Worker bucket for tasks without a shard segment in their name.
SHARED_WORKER = "(shared)"

_WORKER_SEGMENT = re.compile(r"^s\d+$")

_EPS = 1e-12


def worker_of(name: str) -> str:
    """The shard/worker identity segment of a task name.

    ``it0/s3/dim32.0/shuffle_stitch`` -> ``s3``; names without an
    ``s<N>`` segment (dataset reads, global barriers) map to
    :data:`SHARED_WORKER`.
    """
    for part in name.split("/"):
        if _WORKER_SEGMENT.match(part):
            return part
    return SHARED_WORKER


def op_basename(name: str) -> str:
    """The op-class identity of a task name (its last path segment)."""
    return name.rsplit("/", 1)[-1]


def exec_seconds(record: TaskRecord) -> float:
    """Total execution (non-wait) seconds of one record."""
    return sum(t1 - t0 for _kind, t0, t1 in record.segments)


@dataclass(frozen=True)
class AlignedPair:
    """One base/candidate record pair and how it was matched."""

    base: TaskRecord
    candidate: TaskRecord
    how: str  # ALIGN_BY_NAME | ALIGN_BY_CLASS


def align_records(base_records, candidate_records):
    """Match records across two traces by stable task identity.

    Returns ``(pairs, base_only, candidate_only)``.  Exact-name
    matches come first; leftovers pair up within each
    :func:`group_label` class in ``(start, name)`` order; the rest
    land in the explicit unmatched lists.
    """
    base_records = list(base_records)
    candidate_records = list(candidate_records)
    by_name = {record.name: record for record in candidate_records}
    pairs = []
    base_left = []
    matched_candidates = set()
    for record in base_records:
        other = by_name.get(record.name)
        if other is not None:
            pairs.append(AlignedPair(record, other, ALIGN_BY_NAME))
            matched_candidates.add(record.name)
        else:
            base_left.append(record)
    candidate_left = [record for record in candidate_records
                      if record.name not in matched_candidates]

    base_only = []
    candidate_by_class: dict = {}
    for record in candidate_left:
        candidate_by_class.setdefault(group_label(record.name),
                                      []).append(record)
    for bucket in candidate_by_class.values():
        bucket.sort(key=lambda record: (record.start, record.name))
    base_left.sort(key=lambda record: (record.start, record.name))
    for record in base_left:
        bucket = candidate_by_class.get(group_label(record.name))
        if bucket:
            pairs.append(AlignedPair(record, bucket.pop(0),
                                     ALIGN_BY_CLASS))
        else:
            base_only.append(record)
    candidate_only = [record for bucket in candidate_by_class.values()
                      for record in bucket]
    candidate_only.sort(key=lambda record: (record.start, record.name))
    return pairs, base_only, candidate_only


def _aggregate_path(report: CriticalPathReport, key_fn) -> dict:
    """On-path seconds per key; wait steps keep :data:`WAIT_LABEL`."""
    totals: dict = {}
    for step in report.path:
        key = WAIT_LABEL if step.kind == "wait" else key_fn(step.name)
        totals[key] = totals.get(key, 0.0) + step.seconds
    return totals


def _delta_table(base: dict, candidate: dict,
                 makespan_delta: float) -> dict:
    """Per-key {base, candidate, delta, share} rows, all keys union."""
    rows = {}
    for key in sorted(set(base) | set(candidate)):
        base_s = base.get(key, 0.0)
        cand_s = candidate.get(key, 0.0)
        delta = cand_s - base_s
        share = (delta / makespan_delta
                 if abs(makespan_delta) > _EPS else 0.0)
        rows[key] = {"base": base_s, "candidate": cand_s,
                     "delta": delta, "share": share}
    return rows


@dataclass(frozen=True)
class DiffEntry:
    """One ranked contributor to the makespan delta (an op class)."""

    label: str
    path_base: float
    path_candidate: float
    path_delta: float
    share: float  # of the makespan delta (signed; 0 when delta ~ 0)
    exec_base: float
    exec_delta: float
    workers: tuple = ()  # worker ids carrying most of the exec delta

    @property
    def exec_pct(self) -> float:
        """Relative execution-time change for this op class."""
        if self.exec_base <= _EPS:
            return 0.0
        return self.exec_delta / self.exec_base

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "path_base": self.path_base,
            "path_candidate": self.path_candidate,
            "path_delta": self.path_delta,
            "share": self.share,
            "exec_base": self.exec_base,
            "exec_delta": self.exec_delta,
            "exec_pct": self.exec_pct,
            "workers": list(self.workers),
        }


@dataclass
class TraceDiff:
    """Everything :func:`diff_traces` learned, ready to render."""

    base_makespan: float
    candidate_makespan: float
    base_report: CriticalPathReport
    candidate_report: CriticalPathReport
    alignment: dict = field(default_factory=dict)
    by_op: dict = field(default_factory=dict)
    by_label: dict = field(default_factory=dict)
    by_worker: dict = field(default_factory=dict)
    by_class: dict = field(default_factory=dict)
    entries: list = field(default_factory=list)  # DiffEntry, ranked
    base_provenance: dict = field(default_factory=dict)
    candidate_provenance: dict = field(default_factory=dict)
    pairs: list = field(default_factory=list)
    base_only: list = field(default_factory=list)
    candidate_only: list = field(default_factory=list)

    @property
    def makespan_delta(self) -> float:
        return self.candidate_makespan - self.base_makespan

    def explained_share(self, pattern: str) -> float:
        """Summed makespan-delta share of ops whose label matches.

        ``pattern`` is a substring match on the entry label — the
        acceptance check for "the Shuffle perturbation explains >= 90%
        of the delta" is ``diff.explained_share("shuffle") >= 0.9``.
        """
        return sum(entry.share for entry in self.entries
                   if pattern in entry.label)

    def as_dict(self) -> dict:
        return {
            "base_makespan": self.base_makespan,
            "candidate_makespan": self.candidate_makespan,
            "makespan_delta": self.makespan_delta,
            "alignment": dict(self.alignment),
            "entries": [entry.as_dict() for entry in self.entries],
            "by_op": self.by_op,
            "by_label": self.by_label,
            "by_worker": self.by_worker,
            "by_class": self.by_class,
            "base_provenance": dict(self.base_provenance),
            "candidate_provenance": dict(self.candidate_provenance),
        }

    def dumps(self) -> str:
        """Canonical JSON (sorted keys, fixed separators, newline)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=1,
                          separators=(",", ": ")) + "\n"

    def format(self, k: int = 10) -> str:
        """The ranked attribution report, human-readable."""
        delta = self.makespan_delta
        pct = (delta / self.base_makespan * 100.0
               if self.base_makespan > _EPS else 0.0)
        lines = [
            f"trace diff: makespan {self.base_makespan * 1e3:.3f} ms -> "
            f"{self.candidate_makespan * 1e3:.3f} ms "
            f"(delta {delta * 1e3:+.3f} ms, {pct:+.1f}%)",
            "alignment: "
            f"{self.alignment.get('name', 0)} by name, "
            f"{self.alignment.get('class', 0)} by class, "
            f"{self.alignment.get('base_only', 0)}+"
            f"{self.alignment.get('candidate_only', 0)} unmatched",
        ]
        for side, prov in (("base", self.base_provenance),
                           ("candidate", self.candidate_provenance)):
            if prov:
                lines.append(
                    f"{side}: config {prov.get('config_fingerprint', '?')}"
                    f" git {prov.get('git', '?')}")
        lines.append("ranked attribution (on-path seconds delta):")
        lines.append(f"{'#':>2}  {'pathΔms':>9}  {'share':>7}  "
                     f"{'execΔ':>7}  op")
        for rank, entry in enumerate(self.entries[:k], start=1):
            where = (f" [workers {','.join(entry.workers)}]"
                     if entry.workers else "")
            lines.append(
                f"{rank:>2}  {entry.path_delta * 1e3:>+9.3f}  "
                f"{entry.share:>7.1%}  {entry.exec_pct:>+7.1%}  "
                f"{entry.label}{where}")
        classes = "  ".join(
            f"{name}={self.by_class.get(name, 0.0) * 1e3:+.3f}ms"
            for name in RESOURCE_CLASSES)
        lines.append(f"on-path delta by resource class: {classes}")
        workers = sorted(self.by_worker.items(),
                         key=lambda item: (-abs(item[1]["delta"]),
                                           item[0]))
        noteworthy = [f"{name}={row['delta'] * 1e3:+.3f}ms"
                      for name, row in workers[:4]
                      if abs(row["delta"]) > _EPS]
        if noteworthy:
            lines.append("on-path delta by worker: "
                         + "  ".join(noteworthy))
        return "\n".join(lines)

    def overlay(self) -> dict:
        """Chrome-trace overlay: base pid 0, candidate pid 1, diff pid 2.

        Each side renders its records as complete events on per-worker
        threads; pid 2 carries a cumulative ``|exec delta|`` counter
        over the aligned pairs (monotone in both ts and value), so the
        knee of that curve points at where the two runs diverge.
        """
        events: list = []
        sides = (("base", 0, [pair.base for pair in self.pairs]
                  + list(self.base_only)),
                 ("candidate", 1, [pair.candidate for pair in self.pairs]
                  + list(self.candidate_only)))
        metadata: list = []
        for side, pid, records in sides:
            metadata.append({"name": "process_name", "ph": "M",
                             "pid": pid, "tid": 0,
                             "args": {"name": side}})
            metadata.append({"name": "process_sort_index", "ph": "M",
                             "pid": pid, "tid": 0,
                             "args": {"sort_index": pid}})
            tids: dict = {}
            for record in sorted(records,
                                 key=lambda r: (r.start, r.name)):
                track = worker_of(record.name)
                if track not in tids:
                    tids[track] = len(tids)
                events.append({
                    "name": record.name, "cat": side, "ph": "X",
                    "ts": _us(record.start),
                    "dur": _us(record.duration),
                    "pid": pid, "tid": tids[track],
                    "args": {"exec": round(exec_seconds(record), 9),
                             "wait": round(record.wait_seconds, 9)},
                })
            for track, tid in tids.items():
                metadata.append({"name": "thread_name", "ph": "M",
                                 "pid": pid, "tid": tid,
                                 "args": {"name": track}})
                metadata.append({"name": "thread_sort_index", "ph": "M",
                                 "pid": pid, "tid": tid,
                                 "args": {"sort_index": tid}})
        metadata.append({"name": "process_name", "ph": "M", "pid": 2,
                         "tid": 0, "args": {"name": "diff"}})
        metadata.append({"name": "process_sort_index", "ph": "M",
                         "pid": 2, "tid": 0, "args": {"sort_index": 2}})
        metadata.append({"name": "thread_name", "ph": "M", "pid": 2,
                         "tid": 0,
                         "args": {"name": "cumulative |exec delta|"}})
        samples = sorted(
            (pair.candidate.end,
             abs(exec_seconds(pair.candidate)
                 - exec_seconds(pair.base)),
             pair.candidate.name)
            for pair in self.pairs)
        cumulative = 0.0
        for end, delta, _name in samples:
            cumulative += delta
            events.append({
                "name": "cumulative |exec delta| (s)", "ph": "C",
                "ts": _us(end), "pid": 2, "tid": 0,
                "args": {"seconds": round(cumulative, 9)},
            })
        events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"],
                                   e["name"]))
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "diff": {
                    "base_makespan": self.base_makespan,
                    "candidate_makespan": self.candidate_makespan,
                    "makespan_delta": self.makespan_delta,
                    "alignment": dict(self.alignment),
                },
                "base_provenance": dict(self.base_provenance),
                "candidate_provenance": dict(self.candidate_provenance),
            },
        }


def _us(seconds: float) -> float:
    """Seconds -> microseconds, rounded to nanosecond grain."""
    return round(seconds * 1e6, 3)


def _worker_annotation(pairs, label: str, op_delta: float) -> tuple:
    """Workers carrying the bulk of one op class's exec delta."""
    per_worker: dict = {}
    for pair in pairs:
        if op_basename(pair.base.name) != label:
            continue
        delta = exec_seconds(pair.candidate) - exec_seconds(pair.base)
        worker = worker_of(pair.base.name)
        per_worker[worker] = per_worker.get(worker, 0.0) + delta
    if not per_worker or abs(op_delta) <= _EPS:
        return ()
    ranked = sorted(per_worker.items(),
                    key=lambda item: (-abs(item[1]), item[0]))
    total = sum(abs(delta) for _worker, delta in ranked)
    if total <= _EPS:
        return ()
    covered = 0.0
    chosen = []
    for worker, delta in ranked:
        if len(chosen) == 4:
            break
        chosen.append(worker)
        covered += abs(delta)
        if covered / total >= 0.8:
            break
    if len(chosen) == len(per_worker) and len(per_worker) > 1:
        return ()  # spread evenly: naming every worker says nothing
    return tuple(sorted(chosen))


def diff_traces(base: FrozenTrace, candidate: FrozenTrace,
                top_k: int = 10) -> TraceDiff:
    """Diff two frozen traces into a ranked attribution report.

    Identical traces diff to exactly zero everywhere (same floats in,
    same iteration order, exact-zero subtraction); the report is a
    pure function of the two traces, so its canonical JSON is
    byte-stable.
    """
    pairs, base_only, candidate_only = align_records(
        base.records, candidate.records)
    base_report = analyze_critical_path(list(base.records),
                                        base.makespan, top_k=top_k)
    candidate_report = analyze_critical_path(list(candidate.records),
                                             candidate.makespan,
                                             top_k=top_k)
    makespan_delta = candidate.makespan - base.makespan
    by_op = _delta_table(
        _aggregate_path(base_report, op_basename),
        _aggregate_path(candidate_report, op_basename), makespan_delta)
    by_label = _delta_table(
        _aggregate_path(base_report, group_label),
        _aggregate_path(candidate_report, group_label), makespan_delta)
    by_worker = _delta_table(
        _aggregate_path(base_report, worker_of),
        _aggregate_path(candidate_report, worker_of), makespan_delta)

    exec_by_op: dict = {}
    for pair in pairs:
        label = op_basename(pair.base.name)
        base_s, delta_s = exec_by_op.get(label, (0.0, 0.0))
        exec_by_op[label] = (
            base_s + exec_seconds(pair.base),
            delta_s + exec_seconds(pair.candidate)
            - exec_seconds(pair.base))

    entries = []
    for label, row in by_op.items():
        exec_base, exec_delta = exec_by_op.get(label, (0.0, 0.0))
        entries.append(DiffEntry(
            label=label,
            path_base=row["base"],
            path_candidate=row["candidate"],
            path_delta=row["delta"],
            share=row["share"],
            exec_base=exec_base,
            exec_delta=exec_delta,
            workers=_worker_annotation(pairs, label, exec_delta)))
    entries.sort(key=lambda entry: (-abs(entry.path_delta),
                                    entry.label))

    return TraceDiff(
        base_makespan=base.makespan,
        candidate_makespan=candidate.makespan,
        base_report=base_report,
        candidate_report=candidate_report,
        alignment={
            "name": sum(1 for pair in pairs
                        if pair.how == ALIGN_BY_NAME),
            "class": sum(1 for pair in pairs
                         if pair.how == ALIGN_BY_CLASS),
            "base_only": len(base_only),
            "candidate_only": len(candidate_only),
        },
        by_op=by_op, by_label=by_label, by_worker=by_worker,
        by_class=class_deltas(base_report, candidate_report),
        entries=entries,
        base_provenance=dict(base.metadata.get("provenance", {})),
        candidate_provenance=dict(
            candidate.metadata.get("provenance", {})),
        pairs=pairs, base_only=base_only,
        candidate_only=candidate_only)


@dataclass(frozen=True)
class BenchDiffRow:
    """One metric's delta, severity-scored against its tolerance."""

    metric: str
    baseline: float | None
    current: float | None
    rel_delta: float
    tolerance: float
    status: str
    severity: float  # |rel_delta| / tolerance; inf for hard failures

    def as_dict(self) -> dict:
        # NaN / inf sentinels become null so the payload stays strict
        # JSON (canonical_json round-trips through json.loads).
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel_delta": (None if self.rel_delta != self.rel_delta
                          else self.rel_delta),
            "tolerance": self.tolerance,
            "status": self.status,
            "severity": (None if self.severity == float("inf")
                         else self.severity),
        }


@dataclass
class BenchDiff:
    """Ranked metric attribution for one bench-vs-baseline pair."""

    name: str
    rows: list = field(default_factory=list)  # BenchDiffRow, ranked
    fingerprint_match: bool = True
    base_provenance: dict = field(default_factory=dict)
    candidate_provenance: dict = field(default_factory=dict)

    @property
    def regressed(self) -> list:
        return [row for row in self.rows
                if row.status in ("fail", "missing")]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "fingerprint_match": self.fingerprint_match,
            "rows": [row.as_dict() for row in self.rows],
            "base_provenance": dict(self.base_provenance),
            "candidate_provenance": dict(self.candidate_provenance),
        }

    def format(self, k: int | None = None) -> str:
        """Ranked attribution table (most-over-tolerance first)."""
        lines = [f"bench diff {self.name}: "
                 f"{len(self.regressed)} metric(s) over tolerance"]
        if not self.fingerprint_match:
            lines.append("  WARNING: config fingerprints differ — "
                         "the runs measured different workloads")
        for side, prov in (("base", self.base_provenance),
                           ("candidate", self.candidate_provenance)):
            if prov:
                lines.append(
                    f"  {side}: git {prov.get('git', '?')} config "
                    f"{prov.get('config_fingerprint', '?')}")
        lines.append(f"  {'#':>2}  {'sev':>6}  {'delta':>8}  "
                     f"{'tol':>6}  {'metric':<28} "
                     f"{'baseline':>12} -> {'current':>12}")
        rows = self.rows if k is None else self.rows[:k]
        for rank, row in enumerate(rows, start=1):
            severity = ("inf" if row.severity == float("inf")
                        else f"{row.severity:.1f}x")
            delta = ("-" if row.rel_delta != row.rel_delta
                     else f"{row.rel_delta:+.2%}")
            baseline = ("-" if row.baseline is None
                        else f"{row.baseline:.6g}")
            current = ("-" if row.current is None
                       else f"{row.current:.6g}")
            lines.append(
                f"  {rank:>2}  {severity:>6}  {delta:>8}  "
                f"{row.tolerance:>6.1%}  {row.metric:<28} "
                f"{baseline:>12} -> {current:>12}  {row.status}")
        return "\n".join(lines)


def diff_snapshots(baseline, candidate) -> BenchDiff:
    """Rank a candidate snapshot's metric deltas against its baseline.

    Severity is relative delta over tolerance — the distance past the
    gate, not the raw delta — so a 2% move on a 0.5% tolerance
    outranks a 20% move on a 50% one.  ``missing`` metrics score
    infinite severity; ``new`` ones score zero.
    """
    from repro.bench.snapshot import compare_snapshots
    report = compare_snapshots(baseline, candidate)
    rows = []
    for gate in report.gates:
        if gate.status == "missing":
            severity = float("inf")
        elif gate.status == "new":
            severity = 0.0
        elif gate.tolerance > 0:
            severity = abs(gate.rel_delta) / gate.tolerance
        else:
            severity = (float("inf") if gate.rel_delta != 0.0 else 0.0)
        rows.append(BenchDiffRow(
            metric=gate.metric, baseline=gate.baseline,
            current=gate.current, rel_delta=gate.rel_delta,
            tolerance=gate.tolerance, status=gate.status,
            severity=severity))
    rows.sort(key=lambda row: (-row.severity
                               if row.severity != float("inf")
                               else float("-inf"), row.metric))
    prov = getattr(baseline, "provenance", {}) or {}
    cand_prov = getattr(candidate, "provenance", {}) or {}
    return BenchDiff(name=baseline.name, rows=rows,
                     fingerprint_match=report.fingerprint_match,
                     base_provenance=dict(prov),
                     candidate_provenance=dict(cand_prov))


def diff_bench_dirs(base_dir: str, candidate_dir: str):
    """Diff every snapshot present on both sides of two directories.

    Returns ``(diffs, base_only, candidate_only)`` where the lists
    name snapshots found on only one side.  Used by
    ``repro diff --bench``.
    """
    import os

    from repro.bench.snapshot import load_snapshot

    def snapshots(directory: str) -> dict:
        found = {}
        if os.path.isdir(directory):
            for entry in sorted(os.listdir(directory)):
                if entry.startswith("BENCH_") and entry.endswith(".json"):
                    found[entry] = os.path.join(directory, entry)
        return found

    base = snapshots(base_dir)
    candidate = snapshots(candidate_dir)
    diffs = [diff_snapshots(load_snapshot(base[name]),
                            load_snapshot(candidate[name]))
             for name in sorted(set(base) & set(candidate))]
    base_only = sorted(set(base) - set(candidate))
    candidate_only = sorted(set(candidate) - set(base))
    return diffs, base_only, candidate_only
