"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

Everything the telemetry layer collects — tracer spans, engine task
records, resource utilization — serializes to one Trace Event Format
payload that loads directly in Perfetto or ``chrome://tracing``:

* each simulator resource (and each tracer track) becomes a *thread*
  with a ``thread_name`` metadata event;
* every task execution segment / span becomes a complete (``"X"``)
  event with microsecond ``ts``/``dur``;
* per-resource utilization becomes counter (``"C"``) events sampled on
  the metrics bucket grid, rendering as the pulse-like area charts the
  paper reads off DCGM.

The export is a pure function of modeled quantities: same seed, same
bytes.  :func:`validate_chrome_trace` is the schema check the tests
and the CI smoke step share.
"""

from __future__ import annotations

import json

from repro.sim.metrics import DEFAULT_BUCKET_SECONDS, utilization_timeline
from repro.sim.trace import TraceRecorder
from repro.telemetry.span import Tracer

#: Event phases this exporter emits (subset of the Trace Event Format).
_PHASES = ("X", "C", "M", "i")

#: pid used for every event; one simulated worker == one process.
_PID = 0


def _us(seconds: float) -> float:
    """Seconds -> microseconds, rounded to nanosecond grain."""
    return round(seconds * 1e6, 3)


class _TrackTable:
    """Stable track-name -> tid assignment plus metadata events."""

    def __init__(self):
        self._tids: dict = {}

    def tid(self, track: str) -> int:
        if track not in self._tids:
            self._tids[track] = len(self._tids)
        return self._tids[track]

    def metadata_events(self) -> list:
        events = [{
            "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
            "args": {"name": "repro"},
        }]
        for track, tid in self._tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID,
                "tid": tid, "args": {"name": track},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": _PID,
                "tid": tid, "args": {"sort_index": tid},
            })
        return events


def _record_events(records: list, tracks: _TrackTable) -> list:
    """Task execution segments as complete events, one lane per resource."""
    events = []
    for record in records:
        for kind, t0, t1 in record.segments:
            event = {
                "name": record.name,
                "cat": kind,
                "ph": "X",
                "ts": _us(t0),
                "dur": _us(t1 - t0),
                "pid": _PID,
                "tid": tracks.tid(kind),
            }
            if record.tags:
                event["args"] = {str(key): str(value)
                                 for key, value in
                                 sorted(record.tags.items())}
            events.append(event)
    return events


def _span_events(tracer: Tracer, tracks: _TrackTable) -> list:
    """Closed tracer spans and instants as trace events."""
    events = []
    for span in tracer.completed_spans():
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": _us(span.start),
            "dur": _us(span.duration),
            "pid": _PID,
            "tid": tracks.tid(span.track),
        }
        if span.attrs:
            event["args"] = {str(key): str(value)
                             for key, value in sorted(span.attrs.items())}
        events.append(event)
    for when, name, track, attrs in tracer.instants:
        event = {
            "name": name, "cat": "instant", "ph": "i", "ts": _us(when),
            "pid": _PID, "tid": tracks.tid(track), "s": "t",
        }
        if attrs:
            event["args"] = {str(key): str(value)
                             for key, value in sorted(attrs.items())}
        events.append(event)
    return events


def _counter_events(recorder: TraceRecorder, makespan: float,
                    bucket: float, tracks: _TrackTable) -> list:
    """Per-resource utilization as counter events on the bucket grid."""
    events = []
    for kind in recorder.kinds():
        _times, util = utilization_timeline(recorder, kind, makespan,
                                            bucket)
        name = f"util/{kind.value}"
        tid = tracks.tid(name)
        for index, value in enumerate(util):
            events.append({
                "name": name, "ph": "C", "ts": _us(index * bucket),
                "pid": _PID, "tid": tid,
                "args": {"utilization": round(float(value), 4)},
            })
    return events


def chrome_trace(records: list | None = None,
                 tracer: Tracer | None = None,
                 recorder: TraceRecorder | None = None,
                 makespan: float = 0.0,
                 bucket: float = DEFAULT_BUCKET_SECONDS,
                 metadata: dict | None = None) -> dict:
    """Assemble one Chrome-trace payload from telemetry sources.

    Any subset of sources may be given; events sort by ``(ts, tid,
    name)`` so the payload is byte-stable for deterministic inputs.
    """
    tracks = _TrackTable()
    events: list = []
    if records:
        events.extend(_record_events(records, tracks))
    if tracer is not None:
        events.extend(_span_events(tracer, tracks))
    if recorder is not None and makespan > 0:
        events.extend(_counter_events(recorder, makespan, bucket, tracks))
    events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
    payload = {
        "traceEvents": tracks.metadata_events() + events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    return payload


def trace_to_json(payload: dict) -> str:
    """Deterministic serialization (sorted keys, fixed separators)."""
    return json.dumps(payload, sort_keys=True, indent=1,
                      separators=(",", ": "))


def write_chrome_trace(path: str, payload: dict) -> str:
    """Write the payload to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_json(payload))
        handle.write("\n")
    return path


def validate_chrome_trace(payload: dict) -> int:
    """Check a payload against the Trace Event Format requirements.

    Raises :class:`ValueError` on the first violation; returns the
    number of events otherwise.  Shared by the unit tests and the CI
    smoke step, and intentionally strict about the fields Perfetto's
    JSON importer reads (``name``/``ph``/``pid``/``tid``/``ts``).

    Beyond per-event shape it enforces the cross-event invariants the
    diff-overlay and flight-recorder payloads rely on: counter events
    keep non-decreasing ``ts`` within their ``(pid, tid, name)``
    track, counters named ``cumulative...`` keep non-decreasing
    values, every pid with events carries ``process_name`` metadata,
    and every ``(pid, tid)`` with events carries ``thread_name``
    metadata.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    named_processes = set()  # pids with a process_name metadata event
    named_threads = set()  # (pid, tid) with a thread_name metadata event
    used_pids: dict = {}  # pid -> first non-M event index
    used_threads: dict = {}  # (pid, tid) -> first non-M event index
    counter_ts: dict = {}  # (pid, tid, name) -> last ts
    counter_values: dict = {}  # (pid, tid, name) -> last args values
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if phase == "M":
            if event["name"] == "process_name":
                named_processes.add(event["pid"])
            elif event["name"] == "thread_name":
                named_threads.add((event["pid"], event["tid"]))
            continue
        used_pids.setdefault(event["pid"], index)
        used_threads.setdefault((event["pid"], event["tid"]), index)
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: dur must be a number >= 0")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict):
                raise ValueError(f"{where}: counter events need args")
            track = (event["pid"], event["tid"], event["name"])
            last_ts = counter_ts.get(track)
            if last_ts is not None and ts < last_ts:
                raise ValueError(
                    f"{where}: counter {event['name']!r} ts {ts} "
                    f"regresses below {last_ts} on its track")
            counter_ts[track] = ts
            if "cumulative" in event["name"]:
                # Cumulative counters (diff overlays and the like)
                # promise value monotonicity, not just ts order.
                previous = counter_values.get(track)
                for key in sorted(args):
                    value = args[key]
                    if not isinstance(value, (int, float)):
                        raise ValueError(
                            f"{where}: cumulative counter "
                            f"{event['name']!r} has non-numeric "
                            f"series {key!r}")
                    if (previous is not None
                            and value < previous.get(key, value)):
                        raise ValueError(
                            f"{where}: cumulative counter "
                            f"{event['name']!r} series {key!r} "
                            f"decreases ({previous[key]} -> {value})")
                counter_values[track] = dict(args)
    for pid, index in sorted(used_pids.items()):
        if pid not in named_processes:
            raise ValueError(
                f"traceEvents[{index}]: pid {pid} has events but no "
                "process_name metadata")
    for (pid, tid), index in sorted(used_threads.items()):
        if (pid, tid) not in named_threads:
            raise ValueError(
                f"traceEvents[{index}]: thread ({pid}, {tid}) has "
                "events but no thread_name metadata")
    return len(events)
