"""Always-on flight recorder + EWMA/z-score anomaly annotation.

Post-hoc debugging of a shed storm or a stalled hot-swap needs the
last N seconds of context, not a full-run trace nobody enabled.  The
:class:`FlightRecorder` keeps a bounded ring of recent spans, metric
samples and alerts — O(capacity) memory no matter how long the run —
and dumps the retention window as a valid Chrome trace when something
goes wrong: automatically on an alert at or above the trigger
severity, on an exception inside a :meth:`FlightRecorder.watch`
block, or on demand.

Dumps are deterministic artifacts: sequence-numbered filenames (no
timestamps), canonical JSON, events only from the modeled clock — so
they can sit behind the determinism CI like every other telemetry
output.

:class:`AnomalyDetector` is the statistical feeder: an exponentially
weighted mean/variance per timeseries with a z-score trigger, turning
"loss jumped four sigma" into a named ``anomaly`` alert on the same
alerts track the monitors use.
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry.monitor import Alert

#: Default ring capacity (events, across all types).
DEFAULT_CAPACITY = 2048

#: Alert severities that trigger an automatic dump.
DUMP_SEVERITIES = ("warning", "critical")


@dataclass(frozen=True)
class FlightEvent:
    """One ring entry: a span, sample, alert or exception marker.

    ``time_s`` is the modeled time the event *ended* (spans) or
    occurred (everything else) — retention windows trim on it.
    """

    kind: str  # "span" | "sample" | "alert" | "exception"
    time_s: float
    name: str
    track: str = "flight"
    start_s: float | None = None  # spans only
    value: float | None = None  # samples only
    attrs: dict = field(default_factory=dict)


class FlightRecorder:
    """Bounded ring buffer of recent telemetry, with dump triggers.

    :param capacity: maximum events retained; the ring never grows
        past this, old events fall off the far end (counted in
        :attr:`dropped`).
    :param retention_s: dump window in modeled seconds — a dump keeps
        only events within ``retention_s`` of the trigger time.
        ``None`` dumps the whole ring.
    :param dump_dir: where automatic dumps are written; ``None``
        disables writing (dumps are still built and returned).
    :param trigger_severities: alert severities that auto-dump.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 retention_s: float | None = None,
                 dump_dir: str | None = None,
                 trigger_severities=DUMP_SEVERITIES):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retention_s = retention_s
        self.dump_dir = dump_dir
        self.trigger_severities = tuple(trigger_severities)
        self._ring: deque = deque(maxlen=capacity)
        self._appended = 0
        self._dump_seq = 0
        self.dump_paths: list = []

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events that have fallen off the far end of the ring."""
        return self._appended - len(self._ring)

    def events(self) -> list:
        """The ring contents, oldest first."""
        return list(self._ring)

    def _append(self, event: FlightEvent) -> None:
        self._ring.append(event)
        self._appended += 1

    def record_span(self, name: str, start_s: float, end_s: float,
                    track: str = "flight",
                    attrs: dict | None = None) -> None:
        """Retain one completed span."""
        self._append(FlightEvent(kind="span", time_s=end_s, name=name,
                                 track=track, start_s=start_s,
                                 attrs=dict(attrs or {})))

    def record_sample(self, name: str, time_s: float, value: float,
                      track: str = "metrics") -> None:
        """Retain one metric sample (renders as a counter)."""
        self._append(FlightEvent(kind="sample", time_s=time_s,
                                 name=name, track=track,
                                 value=float(value)))

    def record_alert(self, alert: Alert,
                     track: str = "alerts") -> dict | None:
        """Retain an alert; auto-dump if its severity triggers.

        Returns the dump payload when a dump fired, else ``None``.
        """
        self._append(FlightEvent(
            kind="alert", time_s=alert.time_s,
            name=alert.name or f"{alert.monitor}:{alert.severity}",
            track=track,
            attrs={"monitor": alert.monitor,
                   "severity": alert.severity,
                   "message": alert.message,
                   "value": alert.value,
                   "threshold": alert.threshold}))
        if alert.severity in self.trigger_severities:
            return self.dump(reason=f"alert:{alert.name or alert.monitor}",
                             now=alert.time_s)
        return None

    def record_exception(self, time_s: float, error: BaseException,
                         track: str = "alerts") -> dict:
        """Retain an exception marker and dump immediately."""
        self._append(FlightEvent(
            kind="exception", time_s=time_s,
            name=type(error).__name__, track=track,
            attrs={"message": str(error)}))
        return self.dump(reason=f"exception:{type(error).__name__}",
                         now=time_s)

    @contextmanager
    def watch(self, time_s: float = 0.0, label: str = "watch"):
        """Dump-on-exception guard around a code block.

        Records the exception (labelled ``label``), dumps the ring,
        and re-raises — the recorder observes failures, it never
        swallows them.
        """
        try:
            yield self
        except Exception as error:
            self._append(FlightEvent(
                kind="exception", time_s=time_s, name=label,
                track="alerts",
                attrs={"error": type(error).__name__,
                       "message": str(error)}))
            self.dump(reason=f"exception:{label}", now=time_s)
            raise

    def window(self, now: float | None = None) -> list:
        """Ring events within the retention window ending at ``now``."""
        events = self.events()
        if self.retention_s is None:
            return events
        if now is None:
            now = max((event.time_s for event in events), default=0.0)
        horizon = now - self.retention_s
        return [event for event in events if event.time_s >= horizon]

    def dump(self, reason: str = "manual",
             now: float | None = None) -> dict:
        """Build (and optionally write) a Chrome-trace dump.

        The payload passes :func:`~repro.telemetry.chrome_trace.
        validate_chrome_trace`; ``otherData`` carries the trigger
        reason, the retention settings and the drop counter so a
        truncated view is never mistaken for the whole story.
        """
        from repro.telemetry.chrome_trace import (
            trace_to_json,
            validate_chrome_trace,
        )
        window = self.window(now)
        tids: dict = {}
        events: list = []
        for event in window:
            if event.track not in tids:
                tids[event.track] = len(tids)
            tid = tids[event.track]
            if event.kind == "span":
                start = event.start_s or 0.0
                events.append({
                    "name": event.name, "cat": "span", "ph": "X",
                    "ts": _us(start),
                    "dur": _us(max(0.0, event.time_s - start)),
                    "pid": 0, "tid": tid,
                    "args": {str(key): str(value) for key, value
                             in sorted(event.attrs.items())},
                })
            elif event.kind == "sample":
                events.append({
                    "name": event.name, "ph": "C",
                    "ts": _us(event.time_s), "pid": 0, "tid": tid,
                    "args": {"value": event.value},
                })
            else:  # alert / exception markers
                events.append({
                    "name": event.name, "cat": event.kind, "ph": "i",
                    "ts": _us(event.time_s), "pid": 0, "tid": tid,
                    "s": "t",
                    "args": {str(key): str(value) for key, value
                             in sorted(event.attrs.items())},
                })
        events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
        metadata = [{"name": "process_name", "ph": "M", "pid": 0,
                     "tid": 0, "args": {"name": "flight"}}]
        for track, tid in tids.items():
            metadata.append({"name": "thread_name", "ph": "M",
                             "pid": 0, "tid": tid,
                             "args": {"name": track}})
        if not events:
            # A dump must stay a valid trace even when the window is
            # empty — a marker instant records the trigger.
            metadata.append({"name": "thread_name", "ph": "M",
                             "pid": 0, "tid": 0,
                             "args": {"name": "flight"}})
            events = [{"name": f"dump:{reason}", "cat": "dump",
                       "ph": "i", "ts": 0.0, "pid": 0, "tid": 0,
                       "s": "t"}]
        payload = {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "flight": {
                    "reason": reason,
                    "retention_s": self.retention_s,
                    "capacity": self.capacity,
                    "window_events": len(window),
                    "dropped": self.dropped,
                },
            },
        }
        validate_chrome_trace(payload)
        if self.dump_dir is not None:
            import os
            os.makedirs(self.dump_dir, exist_ok=True)
            slug = "".join(ch if ch.isalnum() or ch in "-_" else "_"
                           for ch in reason)
            path = os.path.join(
                self.dump_dir,
                f"flight_{self._dump_seq:03d}_{slug}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(trace_to_json(payload))
                handle.write("\n")
            self.dump_paths.append(path)
        self._dump_seq += 1
        return payload


def _us(seconds: float) -> float:
    """Seconds -> microseconds, rounded to nanosecond grain."""
    return round(seconds * 1e6, 3)


class AnomalyDetector:
    """EWMA mean/deviation z-score detector for one timeseries.

    Maintains exponentially weighted estimates of a series' mean and
    variance; :meth:`observe` returns a named ``anomaly``
    :class:`~repro.telemetry.monitor.Alert` when a sample lands more
    than ``z_threshold`` deviations from the running mean (after a
    warmup, so the first noisy samples don't all alarm).
    """

    def __init__(self, name: str, alpha: float = 0.2,
                 z_threshold: float = 3.0, warmup: int = 8,
                 severity: str = "warning"):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z_threshold <= 0:
            raise ValueError(
                f"z_threshold must be > 0, got {z_threshold}")
        self.name = name
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.severity = severity
        self._mean = 0.0
        self._var = 0.0
        self._count = 0

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def deviation(self) -> float:
        return math.sqrt(max(0.0, self._var))

    def score(self, value: float) -> float:
        """The z-score ``value`` would get, without updating state."""
        deviation = self.deviation
        if self._count < self.warmup or deviation <= 1e-12:
            return 0.0
        return (value - self._mean) / deviation

    def observe(self, time_s: float, value: float) -> Alert | None:
        """Feed one sample; returns an alert when it is anomalous.

        Anomalous samples do *not* update the running estimates —
        otherwise a level shift would drag the mean toward itself and
        silence the very alarms it should keep raising.
        """
        value = float(value)
        z = self.score(value)
        if abs(z) > self.z_threshold:
            return Alert(
                time_s=time_s, monitor=self.name,
                severity=self.severity,
                message=(f"{self.name} = {value:.6g} is {z:+.1f} sigma "
                         f"from EWMA mean {self._mean:.6g}"),
                value=value, threshold=self.z_threshold,
                name="anomaly")
        if self._count == 0:
            self._mean = value
        else:
            delta = value - self._mean
            self._mean += self.alpha * delta
            self._var = ((1.0 - self.alpha)
                         * (self._var + self.alpha * delta * delta))
        self._count += 1
        return None


def annotate_timeseries(detector: AnomalyDetector, samples) -> list:
    """Run a detector over ``(time_s, value)`` samples; collect alerts."""
    alerts = []
    for time_s, value in samples:
        alert = detector.observe(time_s, value)
        if alert is not None:
            alerts.append(alert)
    return alerts
