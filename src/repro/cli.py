"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``list`` — models, datasets, frameworks, experiments.
* ``simulate`` — run one workload under a framework and print metrics.
* ``ablation`` — the Tab. IV toggles for one model.
* ``train`` — real numpy training with AUC (Tab. III path).
* ``experiment`` — run one table/figure harness by id.
* ``gantt`` — ASCII utilization timeline of a simulated run.
* ``serve`` — online inference serving simulation with SLO metrics.
* ``stream`` — the continuous loop: streaming training publishes
  delta snapshots that hot-swap into serving under live traffic,
  with SLO-burn-rate autoscaling.
* ``profile`` — run one workload with telemetry on, write a
  Chrome-trace JSON (loads in Perfetto) and print the critical path
  plus run-health monitor verdicts.
* ``replay`` — record (or load) a frozen task trace and re-derive its
  timeline under perturbed per-class cost scales, without re-running
  the engine.
* ``tune`` — trace-driven what-if auto-tuning: search PICASSO's knob
  space by replay prediction, validate the top candidates with real
  runs, report the winner plus prediction fidelity.
* ``bench`` — run the regression benchmark suite (``bench run``) and
  gate candidate snapshots against baselines (``bench compare``);
  gate failures print the ranked metric-attribution table.
  ``bench walltime`` times the engine hot path for real
  (median-of-N, warm-up discarded) and exits non-zero over budget.
* ``diff`` — differential observability: align two frozen traces and
  attribute the makespan delta per op class / worker / resource
  (text, JSON, Chrome overlay), or rank bench-snapshot deltas
  against committed baselines with ``--bench``.
* ``plan-shards`` — build a skew-aware embedding shard placement,
  price seeded traffic under hash vs planned ownership, and
  optionally write the lossless plan JSON.

Workload commands are thin wrappers over the :mod:`repro.api` facade:
flags build a :class:`~repro.api.RunConfig`, :func:`repro.api.run`
executes it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro import api
from repro.api import RunConfig, ServeConfig, StreamConfig, TuneConfig
from repro.faults import FaultPlan
from repro.bench import (
    BENCHES,
    compare_snapshots,
    load_snapshot,
    run_benches,
    snapshot_filename,
    write_snapshot,
)
from repro.bench.walltime import (
    WALLTIME_BUDGET_S,
    WALLTIME_RUNS,
    WALLTIME_WARMUP,
)
from repro.core import PicassoConfig
from repro.data import ALL_DATASETS, BoundedZipf
from repro.data.spec import FieldSpec
from repro.embedding.placement import (
    PlannerConfig,
    ShardPlanner,
    compare_policies,
)
from repro.experiments import runner as experiment_runner
from repro.experiments.common import format_table, mini_criteo
from repro.models import MODEL_BUILDERS
from repro.prefetch import PrefetchConfig
from repro.replay import WAIT_MODELS, CostHooks, TraceReplayer
from repro.serving import CACHE_KINDS, DiurnalShape, FlashCrowdShape
from repro.sim import FrozenTrace
from repro.sim.export import ascii_gantt
from repro.telemetry import (
    class_deltas,
    diff_bench_dirs,
    diff_snapshots,
    diff_traces,
    format_critical_path,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.training import train_and_evaluate
from repro.tuning import strategies as tuning_strategies


def _cluster(spec: str):
    """argparse type adapter for ``eflops:16`` / ``gn6e:1`` specs."""
    try:
        return api.parse_cluster(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _prefetch_config(args) -> PrefetchConfig | None:
    """The optional hot/cold pipeline config from ``--prefetch-*``.

    ``None`` (prefetch off, byte-identical to the pre-pipeline
    behaviour) unless at least one prefetch flag was given; unset
    flags fall back to :class:`PrefetchConfig` defaults.
    """
    settings = {
        "policy": getattr(args, "prefetch_policy", None),
        "lookahead_depth": getattr(args, "prefetch_lookahead", None),
        "hot_threshold": getattr(args, "prefetch_hot_threshold", None),
    }
    inflight_mb = getattr(args, "prefetch_inflight_mb", None)
    if inflight_mb is not None:
        settings["max_inflight_bytes"] = inflight_mb * float(1 << 20)
    settings = {key: value for key, value in settings.items()
                if value is not None}
    if not settings:
        return None
    try:
        return PrefetchConfig(**settings)
    except ValueError as error:
        raise SystemExit(str(error))


def _run_config(args, **overrides) -> RunConfig:
    """A :class:`RunConfig` from the shared simulation flags."""
    settings = {
        "model": args.model,
        "dataset": args.dataset,
        "scale": args.scale,
        "cluster": args.cluster,
        "batch_size": args.batch,
        "iterations": args.iterations,
        "framework": getattr(args, "framework", "PICASSO"),
        "prefetch": _prefetch_config(args),
    }
    settings.update(overrides)
    return RunConfig(**settings)


def _facade_run(config: RunConfig):
    """Run via the facade, converting config errors to CLI exits."""
    try:
        return api.run(config)
    except ValueError as error:
        raise SystemExit(f"{error}; see `list`")


def _report_rows(report) -> list:
    return [{
        "ips": f"{report.ips:,.0f}",
        "ms/iter": f"{report.seconds_per_iteration * 1000:.1f}",
        "sm_util": f"{report.sm_utilization:.0%}",
        "pcie_GBps": f"{report.pcie_gbps:.2f}",
        "net_Gbps": f"{report.net_gbps:.2f}",
        "ops": report.op_count,
        "micro_ops": f"{report.micro_ops:,}",
    }]


def cmd_list(_args) -> int:
    print("models:     " + ", ".join(sorted(MODEL_BUILDERS)))
    print("datasets:   " + ", ".join(ALL_DATASETS))
    print("frameworks: " + ", ".join(api.frameworks()))
    print("experiments:")
    for title, _fn in experiment_runner.EXPERIMENTS:
        print(f"  - {title}")
    return 0


def cmd_simulate(args) -> int:
    config = _run_config(args)
    report = _facade_run(config)
    cluster = config.resolved_cluster()
    print(f"{args.framework} / {report.name.split('/', 1)[-1]} "
          f"on {args.dataset} ({cluster.name} x{cluster.num_nodes})")
    print(format_table(_report_rows(report), list(_report_rows(report)[0])))
    return 0


def cmd_ablation(args) -> int:
    rows = []
    variants = {
        "PICASSO": PicassoConfig(),
        "w/o packing": PicassoConfig().without("packing"),
        "w/o interleaving": PicassoConfig().without("interleaving"),
        "w/o caching": PicassoConfig().without("caching"),
    }
    model = None
    for name, picasso in variants.items():
        config = _run_config(args, framework="PICASSO", picasso=picasso)
        if model is None:
            model = config.build_model()
        report = api.run(config, model=model)
        rows.append({"variant": name, "ips": f"{report.ips:,.0f}",
                     "sm_util": f"{report.sm_utilization:.0%}"})
    print(format_table(rows, ["variant", "ips", "sm_util"]))
    return 0


def cmd_train(args) -> int:
    dataset = mini_criteo()
    result = train_and_evaluate(dataset, args.variant, mode=args.mode,
                                steps=args.steps,
                                batch_size=args.batch,
                                noise_scale=args.noise)
    print(f"{args.variant} ({args.mode}): AUC={result.auc:.4f} "
          f"logloss={result.logloss:.4f} "
          f"loss {result.losses[0]:.4f} -> {result.final_loss:.4f}")
    return 0


def cmd_experiment(args) -> int:
    for title, fn in experiment_runner.EXPERIMENTS:
        if args.name.lower() in title.lower():
            rows = fn()
            if rows and isinstance(rows, list):
                print(format_table(rows, list(rows[0].keys())))
            else:
                print(rows)
            return 0
    raise SystemExit(f"no experiment matches {args.name!r}; see `list`")


def _serve_config(args) -> ServeConfig:
    """A :class:`ServeConfig` from the ``serve`` flags."""
    fault_plan = None
    if args.crash_rate > 0:
        # Replica crashes over the (expected) span of the trace.
        fault_plan = FaultPlan.generate(
            seed=args.fault_seed,
            duration_s=args.requests / args.rate,
            crash_rate=args.crash_rate,
            workers=args.replicas)
    return ServeConfig(
        requests=args.requests, seed=args.seed, rate_qps=args.rate,
        cache=args.cache, hot_rows=args.hot_rows,
        warm_rows=args.warm_rows, max_batch_size=args.batch_max,
        max_wait_s=args.max_wait_ms / 1e3, slo_s=args.slo_ms / 1e3,
        micro_batch_rows=args.micro_rows, replicas=args.replicas,
        fault_plan=fault_plan, prefetch=_prefetch_config(args))


def cmd_serve(args) -> int:
    try:
        config = _serve_config(args)
    except ValueError as error:
        raise SystemExit(str(error))
    report = api.serve(config)
    print(f"serving {config.requests} requests @ "
          f"{config.rate_qps:,.0f} qps "
          f"(cache={config.cache}, slo={args.slo_ms}ms, "
          f"seed={config.seed})")
    print(format_table([report.row()], list(report.row())))
    stages = report.stage_seconds
    total = sum(stages.values()) or 1.0
    print("stage breakdown: " + "  ".join(
        f"{name}={seconds / total:.0%}"
        for name, seconds in stages.items()))
    if report.degraded is not None:
        degraded = report.degraded
        print(f"degraded mode: {degraded['replica_crashes']} replica "
              f"crash(es), {degraded['degraded_seconds']:.3f}s degraded, "
              f"min live {degraded['min_live_replicas']}/"
              f"{degraded['replicas']}, "
              f"{degraded['tightened_shed']} request(s) shed by "
              "tightened admission")
    return 0


def _stream_shape(args):
    """Build the optional rate shape from the ``stream`` flags."""
    if args.shape == "none":
        return None
    if args.shape == "diurnal":
        return DiurnalShape(period_s=args.shape_period_s,
                            amplitude=args.shape_amplitude)
    return FlashCrowdShape(start_s=args.flash_start_s,
                           duration_s=args.flash_duration_s,
                           multiplier=args.flash_multiplier)


def cmd_stream(args) -> int:
    try:
        config = StreamConfig(
            requests=args.requests, seed=args.seed, rate_qps=args.rate,
            shape=_stream_shape(args), train_steps=args.train_steps,
            train_step_s=args.train_step_ms / 1e3,
            train_batch_size=args.train_batch,
            publish_interval=args.publish_interval,
            drift_ids_per_step=args.drift, max_chain=args.max_chain,
            snapshot_dir=args.snapshot_dir, cache=args.cache,
            slo_s=args.slo_ms / 1e3,
            autoscale=not args.no_autoscale,
            max_replicas=args.max_replicas,
            hot_swaps=not args.no_swaps,
            prefetch=_prefetch_config(args))
    except ValueError as error:
        raise SystemExit(str(error))
    report = api.stream(config)
    print(f"streaming {config.train_steps}-step trainer "
          f"(publish every {config.publish_interval}) against "
          f"{config.requests} requests @ {config.rate_qps:,.0f} qps "
          f"(seed={config.seed})")
    print(format_table([report.row()], list(report.row())))
    print(f"publishes={report.publishes} swaps={report.swaps} "
          f"(skipped {report.skipped_versions} stale version(s)), "
          f"swap pause p99 {report.swap_pause_p99_ms:.3f} ms, "
          f"{report.swap_attributed_shed} swap-attributed shed(s)")
    if report.delta_compression > 0:
        print(f"snapshots: full {report.full_snapshot_bytes:,} B, "
              f"delta mean {report.delta_snapshot_bytes_mean:,.0f} B "
              f"({report.delta_compression:.1f}x smaller)")
    scaling = report.controls.get("ReplicaAutoscaler")
    if scaling is not None:
        print(f"autoscaler: {scaling['scale_ups']} up / "
              f"{scaling['scale_downs']} down, peak "
              f"{scaling['max_replicas_seen']} replica(s)")
    return 0


def cmd_gantt(args) -> int:
    report = _facade_run(_run_config(args))
    print(ascii_gantt(report.result, width=args.width))
    return 0


def cmd_profile(args) -> int:
    config = _run_config(args, record_tasks=True)
    try:
        profiled = api.profile(config, top_k=args.top)
    except ValueError as error:
        raise SystemExit(f"{error}; see `list`")
    validate_chrome_trace(profiled.trace)
    path = write_chrome_trace(args.output, profiled.trace)
    report = profiled.report
    print(f"{args.framework} / {report.name.split('/', 1)[-1]}: "
          f"{report.ips:,.0f} ips, "
          f"{report.seconds_per_iteration * 1e3:.1f} ms/iter, "
          f"{len(report.result.task_records)} tasks")
    print(format_critical_path(profiled.critical_path))
    for name, monitor in sorted(profiled.monitors.items()):
        verdict = "healthy" if monitor.healthy else "UNHEALTHY"
        if name == "pulse":
            detail = (f"{monitor.summary['num_phases']} phases "
                      f"({monitor.summary['alternations']} mem<->compute "
                      "alternations), "
                      f"{monitor.summary['idle_fraction']:.1%} idle")
        elif name == "overlap":
            detail = ("comm/compute overlap "
                      f"{monitor.summary['overlap_ratio']:.1%} "
                      f"({monitor.summary['exposed_seconds'] * 1e3:.1f} ms "
                      "exposed)")
        else:
            detail = ""
        print(f"monitor {name}: {verdict} — {detail}")
        for alert in monitor.alerts:
            print(f"  [{alert.severity}] t={alert.time_s:.3f}s "
                  f"{alert.message}")
    print(f"chrome trace: {path} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _load_or_record_trace(args) -> FrozenTrace:
    """The frozen trace ``replay``/``tune`` operate on."""
    if args.trace:
        try:
            return FrozenTrace.load(args.trace)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot load trace {args.trace}: {error}")
    config = _run_config(args, record_tasks=True)
    report = _facade_run(config)
    return FrozenTrace(records=tuple(report.result.task_records),
                       makespan=report.result.makespan,
                       metadata={"workload": config.as_dict(),
                                 "report_name": report.name,
                                 "provenance": api.run_manifest(
                                     config, report.name,
                                     kind="trace")})


def cmd_replay(args) -> int:
    trace = _load_or_record_trace(args)
    if args.save:
        path = trace.save(args.save)
        print(f"trace saved to {path} ({len(trace)} tasks)")
    try:
        hooks = CostHooks(compute=args.compute, memory=args.memory,
                          communication=args.communication,
                          launch=args.launch,
                          wait_model=args.wait_model)
        replayer = TraceReplayer.from_trace(trace)
    except ValueError as error:
        raise SystemExit(str(error))
    base = replayer.replay()
    replayed = replayer.replay(hooks)
    print(f"replayed {len(trace)} tasks under scales "
          f"compute={args.compute:g} memory={args.memory:g} "
          f"communication={args.communication:g} "
          f"launch={args.launch:g} (waits: {args.wait_model})")
    print(f"makespan: {base.makespan * 1e3:.3f} ms -> "
          f"{replayed.makespan * 1e3:.3f} ms "
          f"({replayed.makespan_ratio:.3f}x)")
    deltas = class_deltas(base.critical_path(),
                          replayed.critical_path())
    rows = [{"class": name,
             "delta_ms": f"{seconds * 1e3:+.3f}"}
            for name, seconds in sorted(deltas.items())
            if name != "makespan"]
    rows.append({"class": "makespan",
                 "delta_ms": f"{deltas['makespan'] * 1e3:+.3f}"})
    print(format_table(rows, ["class", "delta_ms"]))
    return 0


def cmd_tune(args) -> int:
    base = _run_config(args)
    try:
        config = TuneConfig(run=base, strategy=args.strategy,
                            top_k=args.top_k, trace_path=args.trace,
                            wait_model=args.wait_model)
        result = api.tune(config)
    except ValueError as error:
        raise SystemExit(str(error))
    cluster = base.resolved_cluster()
    print(f"tuning PICASSO/{base.model} on {base.dataset} "
          f"({cluster.name} x{cluster.num_nodes}) via {args.strategy}: "
          f"{result.candidates_evaluated} candidates, "
          f"{len(result.validations)} validated")
    rows = [{
        "assignment": ", ".join(
            f"{key}={value:g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in sorted(entry.assignment.items()))
        or "(baseline)",
        "predicted_ips": f"{entry.predicted_ips:,.0f}",
        "measured_ips": f"{entry.measured_ips:,.0f}",
        "error": f"{entry.error:+.1%}",
    } for entry in result.validations]
    print(format_table(rows, ["assignment", "predicted_ips",
                              "measured_ips", "error"]))
    if result.improved:
        assignment = ", ".join(
            f"{key}={value:g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in sorted(result.best_assignment.items()))
        print(f"winner: {assignment} — {result.best_ips:,.0f} ips "
              f"({result.gain:+.1%} vs baseline "
              f"{result.base_ips:,.0f}), prediction error "
              f"{result.fidelity_error:+.1%}")
    else:
        print(f"no validated candidate beat the baseline "
              f"({result.base_ips:,.0f} ips); keeping it")
    return 0


def cmd_bench_run(args) -> int:
    out_dir = args.baseline_dir if args.update_baseline else args.out
    names = args.only.split(",") if args.only else None
    try:
        snapshots = run_benches(names)
    except ValueError as error:
        raise SystemExit(str(error))
    for snapshot in snapshots:
        path = write_snapshot(snapshot, out_dir)
        print(f"bench {snapshot.name}: wrote {path} "
              f"({len(snapshot.metrics)} metrics, "
              f"fingerprint {snapshot.fingerprint})")
    if args.update_baseline:
        print(f"baselines updated in {args.baseline_dir}")
    return 0


def cmd_bench_compare(args) -> int:
    names = args.only.split(",") if args.only else sorted(BENCHES)
    failures = 0
    for name in names:
        baseline_path = os.path.join(args.baseline,
                                     snapshot_filename(name))
        candidate_path = os.path.join(args.candidate,
                                      snapshot_filename(name))
        if not os.path.exists(baseline_path):
            print(f"bench {name}: no baseline at {baseline_path} "
                  "(skipping; run with --update-baseline to create)")
            continue
        if not os.path.exists(candidate_path):
            print(f"bench {name}: FAIL — candidate snapshot missing "
                  f"at {candidate_path}")
            failures += 1
            continue
        try:
            baseline = load_snapshot(baseline_path)
            candidate = load_snapshot(candidate_path)
        except ValueError as error:
            print(f"bench {name}: FAIL — {error}")
            failures += 1
            continue
        report = compare_snapshots(baseline, candidate)
        print(report.format())
        if not report.passed:
            # A failed gate says *that* a metric moved; the ranked
            # attribution table says which moves matter most.
            print(diff_snapshots(baseline, candidate).format())
            failures += 1
    if failures:
        print(f"{failures} bench gate(s) FAILED")
        return 1
    print("all bench gates passed")
    return 0


def cmd_bench_walltime(args) -> int:
    from repro.bench.walltime import measure_walltime

    budget = None if args.no_budget else args.budget_s
    record = measure_walltime(runs=args.runs, warmup=args.warmup,
                              budget_s=budget)
    print(f"bench walltime: median {record['median_s'] * 1e3:.1f} ms "
          f"over {args.runs} run(s) ({args.warmup} warm-up discarded), "
          f"{record['items_per_s']:,.0f} items/s")
    for index, seconds in enumerate(record["runs_s"]):
        print(f"  run {index}: {seconds * 1e3:.1f} ms")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True, indent=1,
                      separators=(",", ": "))
            handle.write("\n")
        print(f"timings written to {args.output}")
    if budget is not None and not record["within_budget"]:
        print(f"bench walltime: FAIL — median {record['median_s']:.3f}s "
              f"exceeds the {budget:.3f}s budget")
        return 1
    if budget is not None:
        print(f"bench walltime: within the {budget:.3f}s budget")
    return 0


def cmd_diff(args) -> int:
    if args.bench:
        base_dir = args.base or "benchmarks/baselines"
        candidate_dir = args.candidate or "bench_out"
        try:
            diffs, base_only, candidate_only = diff_bench_dirs(
                base_dir, candidate_dir)
        except ValueError as error:
            raise SystemExit(str(error))
        if not diffs and not base_only and not candidate_only:
            raise SystemExit(
                f"no BENCH_*.json snapshots under {base_dir} "
                f"or {candidate_dir}")
        for diff in diffs:
            print(diff.format(args.top))
        for name in base_only:
            print(f"baseline-only snapshot (no candidate): {name}")
        for name in candidate_only:
            print(f"candidate-only snapshot (no baseline): {name}")
        if args.output:
            payload = {"mode": "bench",
                       "diffs": [diff.as_dict() for diff in diffs],
                       "base_only": base_only,
                       "candidate_only": candidate_only}
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1,
                          separators=(",", ": "))
                handle.write("\n")
            print(f"bench diff JSON written to {args.output}")
        return 0

    if not args.base or not args.candidate:
        raise SystemExit("diff needs BASE and CANDIDATE trace files "
                         "(or --bench for snapshot directories)")
    try:
        base = FrozenTrace.load(args.base)
        candidate = FrozenTrace.load(args.candidate)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load trace: {error}")
    diff = diff_traces(base, candidate, top_k=args.top)
    print(diff.format(args.top))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(diff.dumps())
        print(f"diff JSON written to {args.output}")
    if args.overlay:
        payload = diff.overlay()
        validate_chrome_trace(payload)
        path = write_chrome_trace(args.overlay, payload)
        print(f"chrome overlay written to {path} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def cmd_plan_shards(args) -> int:
    specs = [FieldSpec(name=f"f{index}", vocab_size=args.vocab,
                       embedding_dim=args.dim, zipf_exponent=args.skew)
             for index in range(args.fields)]
    config = PlannerConfig(
        partitions_per_worker=args.partitions_per_worker,
        hot_candidates=args.hot_candidates,
        replicate_threshold=args.replicate_threshold)
    planner = ShardPlanner(args.workers, config)
    profiles = planner.profiles_for_fields(specs, args.batch)
    sampler = BoundedZipf(vocab_size=args.vocab, exponent=args.skew)
    rng = np.random.default_rng(args.seed)
    batches = {
        spec.name: [sampler.sample(args.batch, rng)
                    for _worker in range(args.workers)]
        for spec in specs
    }
    result = compare_policies(profiles, batches, args.workers, config)
    print(f"workload: {args.fields} fields x vocab {args.vocab} "
          f"(Zipf {args.skew:g}), {args.workers} workers, "
          f"{args.batch} IDs/worker/step")
    for policy in ("hash", "planned"):
        plan = result["plans"][policy]
        load = result[policy]
        summary = plan.summary()
        print(f"{policy:>8}: measured max/mean "
              f"{load.max_mean_ratio:.3f} "
              f"(max {load.max_bytes:,.0f} B/step), predicted "
              f"{summary['predicted_ratio']:.3f}, replicated "
              f"{summary['replicated_rows']}, dedicated "
              f"{summary['dedicated_rows']}")
    hash_load, planned_load = result["hash"], result["planned"]
    cut = 1.0 - planned_load.max_mean_ratio / hash_load.max_mean_ratio
    print("planned placement cuts max/mean exchange ratio by "
          f"{cut:.1%} (max bytes by "
          f"{1.0 - planned_load.max_bytes / hash_load.max_bytes:.1%})")
    if args.output:
        plan = result["plans"][args.policy]
        with open(args.output, "w") as handle:
            json.dump(plan.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"{args.policy} plan written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PICASSO reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models/datasets/experiments") \
        .set_defaults(func=cmd_list)

    def add_prefetch_args(p):
        # Mirrors PrefetchConfig field-for-field; leaving all four
        # unset keeps prefetch off (and output byte-identical).
        p.add_argument("--prefetch-policy",
                       help="batch classifier enabling the hot/cold "
                            "lookahead pipeline (builtins: hotness, "
                            "fifo; plugins via "
                            "register_batch_classifier)")
        p.add_argument("--prefetch-lookahead", type=int,
                       help="lookahead window depth in batches "
                            "(1 = no reordering)")
        p.add_argument("--prefetch-hot-threshold", type=float,
                       help="fast-tier residency score in [0, 1] at "
                            "which a batch counts as hot")
        p.add_argument("--prefetch-inflight-mb", type=float,
                       help="background staging budget in MiB")

    def add_sim_args(p):
        p.add_argument("--model", default="W&D")
        p.add_argument("--dataset", default="Product-1")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--cluster", type=_cluster,
                       default=api.parse_cluster("eflops:16"),
                       help="eflops:N or gn6e:N")
        p.add_argument("--batch", type=int, default=20_000)
        p.add_argument("--iterations", type=int, default=3)
        add_prefetch_args(p)

    sim = sub.add_parser("simulate", help="simulate one workload")
    add_sim_args(sim)
    sim.add_argument("--framework", default="PICASSO",
                     choices=api.frameworks())
    sim.set_defaults(func=cmd_simulate)

    ablation = sub.add_parser("ablation", help="Tab. IV toggles")
    add_sim_args(ablation)
    ablation.set_defaults(func=cmd_ablation)

    train = sub.add_parser("train", help="real training with AUC")
    train.add_argument("--variant", default="dlrm",
                       choices=["wdl", "dlrm", "deepfm", "din", "dien"])
    train.add_argument("--mode", default="sync",
                       choices=["sync", "async-ps"])
    train.add_argument("--steps", type=int, default=100)
    train.add_argument("--batch", type=int, default=1024)
    train.add_argument("--noise", type=float, default=0.6)
    train.set_defaults(func=cmd_train)

    experiment = sub.add_parser("experiment",
                                help="run one table/figure harness")
    experiment.add_argument("name", help="substring of the experiment id")
    experiment.set_defaults(func=cmd_experiment)

    serve = sub.add_parser("serve", help="online serving simulation")
    serve.add_argument("--requests", type=int, default=10_000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--rate", type=float, default=20_000.0,
                       help="mean arrival rate in requests/second")
    serve.add_argument("--cache", default="hbm-dram",
                       choices=CACHE_KINDS)
    serve.add_argument("--hot-rows", type=int, default=4_000)
    serve.add_argument("--warm-rows", type=int, default=60_000)
    serve.add_argument("--batch-max", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--slo-ms", type=float, default=20.0)
    serve.add_argument("--micro-rows", type=int, default=16,
                       help="Eq. 2 activation budget in requests")
    serve.add_argument("--replicas", type=int, default=1,
                       help="model replicas behind the front-end")
    serve.add_argument("--crash-rate", type=float, default=0.0,
                       help="replica crashes per second (0 = none); "
                            "losses degrade admission, not uptime")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the generated fault plan")
    add_prefetch_args(serve)
    serve.set_defaults(func=cmd_serve)

    stream = sub.add_parser(
        "stream",
        help="continuous loop: stream-train, publish deltas, hot-swap")
    stream.add_argument("--requests", type=int, default=4_000)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--rate", type=float, default=20_000.0,
                        help="mean arrival rate in requests/second")
    stream.add_argument("--shape", default="none",
                        choices=["none", "diurnal", "flash"],
                        help="rate shape over the trace")
    stream.add_argument("--shape-period-s", type=float, default=0.2,
                        help="diurnal cycle length (modeled seconds)")
    stream.add_argument("--shape-amplitude", type=float, default=0.5)
    stream.add_argument("--flash-start-s", type=float, default=0.05)
    stream.add_argument("--flash-duration-s", type=float, default=0.05)
    stream.add_argument("--flash-multiplier", type=float, default=3.0)
    stream.add_argument("--train-steps", type=int, default=400)
    stream.add_argument("--train-step-ms", type=float, default=1.0,
                        help="modeled duration of one trainer step")
    stream.add_argument("--train-batch", type=int, default=256)
    stream.add_argument("--publish-interval", type=int, default=25,
                        help="trainer steps between snapshot publishes")
    stream.add_argument("--drift", type=float, default=8.0,
                        help="hot-ID window rotation per step")
    stream.add_argument("--max-chain", type=int, default=8,
                        help="deltas per full base before compaction")
    stream.add_argument("--snapshot-dir",
                        help="keep snapshots here (default: temp dir)")
    stream.add_argument("--cache", default="hbm-dram",
                        choices=CACHE_KINDS)
    stream.add_argument("--slo-ms", type=float, default=20.0)
    stream.add_argument("--max-replicas", type=int, default=4)
    stream.add_argument("--no-autoscale", action="store_true")
    stream.add_argument("--no-swaps", action="store_true",
                        help="freeze serving on the initial weights "
                             "(no-swap baseline)")
    add_prefetch_args(stream)
    stream.set_defaults(func=cmd_stream)

    gantt = sub.add_parser("gantt", help="ASCII utilization timeline")
    add_sim_args(gantt)
    gantt.add_argument("--framework", default="PICASSO",
                       choices=api.frameworks())
    gantt.add_argument("--width", type=int, default=72)
    gantt.set_defaults(func=cmd_gantt)

    prof = sub.add_parser(
        "profile",
        help="trace one workload: Chrome-trace JSON + critical path")
    add_sim_args(prof)
    prof.add_argument("--framework", default="PICASSO",
                      choices=api.frameworks())
    prof.add_argument("--output", default="repro_trace.json",
                      help="Chrome-trace JSON destination")
    prof.add_argument("--top", type=int, default=10,
                      help="entries in the critical-path ranking")
    prof.set_defaults(func=cmd_profile)

    replay = sub.add_parser(
        "replay",
        help="what-if replay of a frozen task trace under "
             "perturbed cost scales")
    add_sim_args(replay)
    replay.add_argument("--trace",
                        help="replay a saved trace JSON instead of "
                             "recording a fresh run")
    replay.add_argument("--save",
                        help="save the recorded trace JSON here")
    replay.add_argument("--compute", type=float, default=1.0,
                        help="duration scale for compute segments")
    replay.add_argument("--memory", type=float, default=1.0,
                        help="duration scale for memory segments")
    replay.add_argument("--communication", type=float, default=1.0,
                        help="duration scale for communication segments")
    replay.add_argument("--launch", type=float, default=1.0,
                        help="duration scale for launch segments")
    replay.add_argument("--wait-model", default="congestion",
                        choices=WAIT_MODELS,
                        help="how queue waits track segment scales")
    replay.set_defaults(func=cmd_replay)

    tune = sub.add_parser(
        "tune",
        help="trace-driven auto-tuning of PICASSO knobs with "
             "real-run validation")
    add_sim_args(tune)
    tune.add_argument("--strategy", default="coordinate-descent",
                      choices=tuning_strategies())
    tune.add_argument("--top-k", type=int, default=3,
                      help="distinct top candidates validated with "
                           "real runs")
    tune.add_argument("--trace",
                      help="reuse a saved baseline trace JSON")
    tune.add_argument("--wait-model", default="congestion",
                      choices=WAIT_MODELS,
                      help="how queue waits track segment scales")
    tune.set_defaults(func=cmd_tune)

    bench = sub.add_parser(
        "bench",
        help="regression-gated benchmark snapshots (BENCH_*.json)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run the suite and write BENCH_<name>.json files")
    bench_run.add_argument("--out", default="bench_out",
                           help="snapshot output directory")
    bench_run.add_argument("--only",
                           help="comma-separated bench names "
                                f"(default: all of {list(BENCHES)})")
    bench_run.add_argument("--update-baseline", action="store_true",
                           help="write snapshots to the baseline "
                                "directory instead of --out")
    bench_run.add_argument("--baseline-dir",
                           default="benchmarks/baselines",
                           help="committed baseline directory")
    bench_run.set_defaults(func=cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare",
        help="gate candidate snapshots against baselines "
             "(exit 1 on violation)")
    bench_compare.add_argument("--baseline",
                               default="benchmarks/baselines",
                               help="baseline snapshot directory")
    bench_compare.add_argument("--candidate", default="bench_out",
                               help="candidate snapshot directory")
    bench_compare.add_argument("--only",
                               help="comma-separated bench names")
    bench_compare.set_defaults(func=cmd_bench_compare)

    bench_walltime = bench_sub.add_parser(
        "walltime",
        help="timed wall-clock run of the engine hot path "
             "(exit 1 over budget)")
    bench_walltime.add_argument(
        "--runs", type=int, default=WALLTIME_RUNS,
        help="timed runs (the median is the headline)")
    bench_walltime.add_argument(
        "--warmup", type=int, default=WALLTIME_WARMUP,
        help="discarded warm-up runs (fill the plan/compile caches)")
    bench_walltime.add_argument(
        "--budget-s", type=float, default=WALLTIME_BUDGET_S,
        help="median wall-clock budget in seconds")
    bench_walltime.add_argument(
        "--no-budget", action="store_true",
        help="report timings without asserting the budget")
    bench_walltime.add_argument(
        "--output", help="write the timing record as JSON (CI artifact)")
    bench_walltime.set_defaults(func=cmd_bench_walltime)

    diff = sub.add_parser(
        "diff",
        help="differential observability: attribute a makespan or "
             "bench delta (trace-vs-trace or bench-vs-baseline)")
    diff.add_argument("base", nargs="?",
                      help="base frozen-trace JSON (or baseline "
                           "snapshot dir with --bench; default "
                           "benchmarks/baselines)")
    diff.add_argument("candidate", nargs="?",
                      help="candidate frozen-trace JSON (or candidate "
                           "snapshot dir with --bench; default "
                           "bench_out)")
    diff.add_argument("--bench", action="store_true",
                      help="diff BENCH_*.json snapshot directories "
                           "instead of traces")
    diff.add_argument("--top", type=int, default=10,
                      help="rows in the ranked attribution table")
    diff.add_argument("--output",
                      help="write the diff report as canonical JSON")
    diff.add_argument("--overlay",
                      help="write a Chrome-trace overlay (base and "
                           "candidate as separate processes; trace "
                           "mode only)")
    diff.set_defaults(func=cmd_diff)

    shards = sub.add_parser(
        "plan-shards",
        help="skew-aware shard placement: hash vs planned exchange")
    shards.add_argument("--workers", type=int, default=8)
    shards.add_argument("--fields", type=int, default=4,
                        help="number of embedding fields")
    shards.add_argument("--vocab", type=int, default=50_000,
                        help="vocabulary size per field")
    shards.add_argument("--dim", type=int, default=16,
                        help="embedding dimension")
    shards.add_argument("--skew", type=float, default=1.2,
                        help="bounded-Zipf exponent of the ID stream")
    shards.add_argument("--batch", type=int, default=4_096,
                        help="IDs per worker per step")
    shards.add_argument("--seed", type=int, default=0,
                        help="seed for the measured traffic")
    shards.add_argument("--partitions-per-worker", type=int, default=8)
    shards.add_argument("--hot-candidates", type=int, default=512)
    shards.add_argument("--replicate-threshold", type=float,
                        default=0.5)
    shards.add_argument("--policy", default="planned",
                        choices=["hash", "planned"],
                        help="which plan --output writes")
    shards.add_argument("--output",
                        help="write the plan as lossless JSON "
                             "(PlacementPlan.as_dict)")
    shards.set_defaults(func=cmd_plan_shards)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
