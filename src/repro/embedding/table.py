"""Hashmap-backed dynamic embedding tables.

Industrial recommenders cannot pre-size embedding matrices: new
categorical IDs appear continuously, so tables are hashmaps from ID to
embedding vector (paper SS III-B).  This implementation is the
cold-storage backend ``HybridHash`` wraps, and also the parameter store
the numpy trainer updates.
"""

from __future__ import annotations

import numpy as np


class EmbeddingTable:
    """A dynamic (hashmap) embedding table.

    Rows are allocated lazily on first lookup and initialized from a
    seeded normal distribution, so two tables with the same seed agree
    on never-touched rows — which the cache-consistency property tests
    rely on.
    """

    def __init__(self, dim: int, initializer_scale: float = 0.01,
                 seed: int = 0, name: str = "table"):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.name = name
        self._scale = float(initializer_scale)
        self._seed = seed
        self._rows: dict = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._rows

    def _initial_row(self, key: int) -> np.ndarray:
        rng = np.random.default_rng((self._seed * 0x9E3779B9 + key)
                                    & 0x7FFFFFFF)
        return (rng.standard_normal(self.dim) * self._scale).astype(
            np.float32)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Fetch rows for ``ids`` (shape ``(n, dim)``), creating them."""
        ids = np.asarray(ids).ravel()
        out = np.empty((ids.size, self.dim), dtype=np.float32)
        rows = self._rows
        for index, raw in enumerate(ids):
            key = int(raw)
            row = rows.get(key)
            if row is None:
                row = self._initial_row(key)
                rows[key] = row
            out[index] = row
        return out

    def scatter_update(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Overwrite rows (last write wins for duplicate IDs)."""
        ids = np.asarray(ids).ravel()
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (ids.size, self.dim):
            raise ValueError(
                f"values shape {values.shape} != ({ids.size}, {self.dim})")
        for index, raw in enumerate(ids):
            self._rows[int(raw)] = values[index].copy()

    def scatter_add(self, ids: np.ndarray, deltas: np.ndarray) -> None:
        """Accumulate ``deltas`` into rows (duplicates accumulate)."""
        ids = np.asarray(ids).ravel()
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (ids.size, self.dim):
            raise ValueError(
                f"deltas shape {deltas.shape} != ({ids.size}, {self.dim})")
        rows = self._rows
        for index, raw in enumerate(ids):
            key = int(raw)
            row = rows.get(key)
            if row is None:
                row = self._initial_row(key)
                rows[key] = row
            row += deltas[index]

    def memory_bytes(self) -> int:
        """Approximate bytes held by materialized rows."""
        return len(self._rows) * self.dim * 4

    def keys(self) -> list:
        """Materialized IDs (unordered)."""
        return list(self._rows)
