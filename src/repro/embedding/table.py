"""Hashmap-backed dynamic embedding tables.

Industrial recommenders cannot pre-size embedding matrices: new
categorical IDs appear continuously, so tables are hashmaps from ID to
embedding vector (paper SS III-B).  This implementation is the
cold-storage backend ``HybridHash`` wraps, and also the parameter store
the numpy trainer updates.
"""

from __future__ import annotations

import numpy as np


class EmbeddingTable:
    """A dynamic (hashmap) embedding table.

    Rows are allocated lazily on first lookup and initialized from a
    seeded normal distribution, so two tables with the same seed agree
    on never-touched rows — which the cache-consistency property tests
    rely on.
    """

    def __init__(self, dim: int, initializer_scale: float = 0.01,
                 seed: int = 0, name: str = "table"):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.name = name
        self._scale = float(initializer_scale)
        self._seed = seed
        self._rows: dict = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._rows

    def _initial_row(self, key: int) -> np.ndarray:
        rng = np.random.default_rng((self._seed * 0x9E3779B9 + key)
                                    & 0x7FFFFFFF)
        return (rng.standard_normal(self.dim) * self._scale).astype(
            np.float32)

    @staticmethod
    def _unique_first_order(ids: np.ndarray) -> tuple:
        """``(unique, inverse)`` with uniques in first-occurrence order.

        ``np.unique`` sorts; reordering by first occurrence keeps the
        row-creation (dict insertion) order identical to the legacy
        per-element loop, so ``keys()`` and row values stay bitwise
        stable across the vectorization.
        """
        unique, first, inverse = np.unique(
            ids, return_index=True, return_inverse=True)
        order = np.argsort(first, kind="stable")
        rank = np.empty(order.size, dtype=inverse.dtype)
        rank[order] = np.arange(order.size, dtype=inverse.dtype)
        return unique[order], rank[inverse.ravel()]

    def _gather_unique(self, unique: np.ndarray) -> np.ndarray:
        """Rows for already-deduplicated IDs, creating missing ones."""
        rows = self._rows
        out = np.empty((unique.size, self.dim), dtype=np.float32)
        for index, raw in enumerate(unique.tolist()):
            key = int(raw)
            row = rows.get(key)
            if row is None:
                row = self._initial_row(key)
                rows[key] = row
            out[index] = row
        return out

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Fetch rows for ``ids`` (shape ``(n, dim)``), creating them.

        Dict traffic is paid once per *unique* ID; the batch result is
        a vectorized gather through the inverse index, which matches
        the legacy per-element loop bit for bit (rows are copied into
        a fresh array either way).
        """
        ids = np.asarray(ids).ravel()
        if ids.size == 0:
            return np.empty((0, self.dim), dtype=np.float32)
        unique, inverse = self._unique_first_order(ids)
        return self._gather_unique(unique)[inverse]

    def scatter_update(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Overwrite rows (last write wins for duplicate IDs)."""
        ids = np.asarray(ids).ravel()
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (ids.size, self.dim):
            raise ValueError(
                f"values shape {values.shape} != ({ids.size}, {self.dim})")
        if ids.size == 0:
            return
        # One dict store per unique ID, in first-occurrence order (the
        # legacy loop's insertion order), each taking its last write.
        unique, first = np.unique(ids, return_index=True)
        _, reversed_first = np.unique(ids[::-1], return_index=True)
        last = ids.size - 1 - reversed_first
        order = np.argsort(first, kind="stable")
        rows = self._rows
        for position in order.tolist():
            rows[int(unique[position])] = values[last[position]].copy()

    def scatter_add(self, ids: np.ndarray, deltas: np.ndarray) -> None:
        """Accumulate ``deltas`` into rows (duplicates accumulate).

        Duplicate IDs fold left-to-right in occurrence order
        (``np.add.at`` is unbuffered and applies updates in index
        order), reproducing the legacy loop's float32 rounding exactly.
        """
        ids = np.asarray(ids).ravel()
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (ids.size, self.dim):
            raise ValueError(
                f"deltas shape {deltas.shape} != ({ids.size}, {self.dim})")
        if ids.size == 0:
            return
        unique, inverse = self._unique_first_order(ids)
        accumulated = self._gather_unique(unique)
        np.add.at(accumulated, inverse, deltas)
        rows = self._rows
        for index, raw in enumerate(unique.tolist()):
            # In-place writeback keeps existing row objects identical
            # to the legacy ``row += delta`` mutation.
            rows[int(raw)][...] = accumulated[index]

    def memory_bytes(self) -> int:
        """Approximate bytes held by materialized rows."""
        return len(self._rows) * self.dim * 4

    def keys(self) -> list:
        """Materialized IDs (unordered)."""
        return list(self._rows)
