"""Multi-level embedding cache: the paper's HybridHash extension.

SS III-D notes that ``HybridHash`` "can be extended to a multiple-level
cache system, including devices like Intel's persistent memory and
SSD".  :class:`MultiLevelCache` implements that extension: an ordered
hierarchy of tiers (e.g. HBM -> DRAM -> PMEM -> SSD), each a capacity-
bounded scratchpad over the next, with the bottom tier authoritative.
Frequency statistics drive periodic tier reassignment exactly like
Algorithm 1's flush: the hottest rows float to the fastest tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.counter import FrequencyCounter
from repro.embedding.table import EmbeddingTable


@dataclass(frozen=True)
class CacheTier:
    """One storage tier of the hierarchy.

    :param capacity_bytes: how many embedding bytes the tier may pin.
    :param access_seconds_per_byte: modeled bandwidth cost; used by
        the cost estimates in :meth:`MultiLevelCache.expected_access_cost`.
    :param access_latency: fixed per-row access latency in seconds
        (e.g. a PCIe round trip for DRAM reached from the GPU); this is
        what makes tier placement move *tail* latency in the serving
        path, where rows are small and bandwidth terms vanish.
    """

    name: str
    capacity_bytes: float
    access_seconds_per_byte: float
    access_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        if self.access_seconds_per_byte < 0:
            raise ValueError("access cost must be >= 0")
        if self.access_latency < 0:
            raise ValueError("access_latency must be >= 0")


#: A typical PICASSO-era hierarchy (per-byte costs ~ 1/bandwidth).
DEFAULT_TIERS = (
    CacheTier("hbm", capacity_bytes=1 << 30,
              access_seconds_per_byte=1.0 / 800e9),
    CacheTier("dram", capacity_bytes=64 << 30,
              access_seconds_per_byte=1.0 / 80e9),
    CacheTier("pmem", capacity_bytes=256 << 30,
              access_seconds_per_byte=1.0 / 8e9),
    CacheTier("ssd", capacity_bytes=float("inf"),
              access_seconds_per_byte=1.0 / 2e9),
)


@dataclass
class TierStats:
    """Per-tier hit statistics."""

    hits: int = 0

    def as_dict(self) -> dict:
        """Plain-dict snapshot for metrics export and benchmarks."""
        return {"hits": self.hits}

    def merge(self, other: "TierStats") -> "TierStats":
        """Combined counts of two tiers/runs (``Stats`` protocol)."""
        return TierStats(hits=self.hits + other.hits)


class MultiLevelCache:
    """An N-tier frequency-managed embedding cache.

    The bottom tier is authoritative (it can always serve any ID); the
    tiers above pin the hottest rows that fit.  ``lookup`` returns the
    embeddings and records which tier served each unique ID; every
    ``flush_iters`` iterations the placement is rebuilt from the
    frequency counter (hottest rows to the fastest tier, next-hottest
    to the second tier, and so on).
    """

    def __init__(self, table: EmbeddingTable, tiers: tuple = DEFAULT_TIERS,
                 warmup_iters: int = 50, flush_iters: int = 50):
        if not tiers:
            raise ValueError("at least one tier is required")
        if any(tiers[i].access_seconds_per_byte
               > tiers[i + 1].access_seconds_per_byte
               for i in range(len(tiers) - 1)):
            raise ValueError("tiers must be ordered fastest first")
        if warmup_iters < 0 or flush_iters < 1:
            raise ValueError("invalid warmup/flush configuration")
        self.table = table
        self.tiers = tuple(tiers)
        self.warmup_iters = warmup_iters
        self.flush_iters = flush_iters
        self.counter = FrequencyCounter()
        self.stats = {tier.name: TierStats() for tier in tiers}
        #: per post-warm-up iteration fast-tier hit ratio (cache-health
        #: monitor signal; entry k is iteration warmup_iters + k).
        self.hit_history: list = []
        #: iteration counts at which placement was rebuilt.
        self.flush_history: list = []
        self._placement: dict = {}  # id -> tier index
        self._iteration = 0

    @property
    def iteration(self) -> int:
        """Iterations processed."""
        return self._iteration

    def tier_of(self, key: int) -> str:
        """Name of the tier currently holding ``key``."""
        index = self._placement.get(int(key), len(self.tiers) - 1)
        return self.tiers[index].name

    def rows_per_tier(self) -> dict:
        """How many rows each tier currently pins (bottom excluded)."""
        counts = {tier.name: 0 for tier in self.tiers}
        for index in self._placement.values():
            counts[self.tiers[index].name] += 1
        counts[self.tiers[-1].name] = max(
            0, self.counter.distinct_ids()
            - sum(counts[tier.name] for tier in self.tiers[:-1]))
        return counts

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Fetch embeddings, tracking per-tier hits; returns rows."""
        ids = np.asarray(ids).ravel()
        self.counter.observe(ids)
        if self._iteration >= self.warmup_iters:
            unique = np.unique(ids)
            fast_hits = 0
            for raw in unique:
                index = self._placement.get(int(raw),
                                            len(self.tiers) - 1)
                self.stats[self.tiers[index].name].hits += 1
                if index == 0:
                    fast_hits += 1
            self.hit_history.append(
                fast_hits / unique.size if unique.size else 0.0)
        result = self.table.lookup(ids)
        self._iteration += 1
        if (self._iteration >= self.warmup_iters
                and self._iteration % self.flush_iters == 0):
            self._rebuild_placement()
            self.flush_history.append(self._iteration)
        return result

    def update(self, ids: np.ndarray, deltas: np.ndarray) -> None:
        """Gradient updates go to the authoritative table."""
        self.table.scatter_add(ids, deltas)

    def expected_access_cost(self, ids: np.ndarray) -> float:
        """Modeled seconds to fetch a batch given current placement."""
        ids = np.unique(np.asarray(ids).ravel())
        row_bytes = self.table.dim * 4
        cost = 0.0
        for raw in ids:
            index = self._placement.get(int(raw), len(self.tiers) - 1)
            tier = self.tiers[index]
            cost += tier.access_latency \
                + row_bytes * tier.access_seconds_per_byte
        return cost

    def _rebuild_placement(self) -> None:
        """Float the hottest rows to the fastest tiers (flush step)."""
        row_bytes = self.table.dim * 4
        placement: dict = {}
        ordered = self.counter.top_k(self.counter.distinct_ids())
        cursor = 0
        for index, tier in enumerate(self.tiers[:-1]):
            # An unbounded non-bottom tier pins everything that's left
            # (float('inf') // row_bytes is nan, so clamp explicitly).
            if tier.capacity_bytes == float("inf"):
                tier_rows = len(ordered) - cursor
            else:
                tier_rows = int(tier.capacity_bytes // row_bytes)
            for key in ordered[cursor:cursor + tier_rows]:
                placement[key] = index
            cursor += tier_rows
            if cursor >= len(ordered):
                break
        self._placement = placement

    def hit_fractions(self) -> dict:
        """Fraction of post-warm-up unique lookups served per tier."""
        total = sum(stats.hits for stats in self.stats.values())
        if total == 0:
            return {tier.name: 0.0 for tier in self.tiers}
        return {name: stats.hits / total
                for name, stats in self.stats.items()}

    def stats_as_dict(self) -> dict:
        """Uniform cache-state export (mirrors ``CacheStats.as_dict``).

        Returns per-tier hit counts and fractions plus the fast-tier
        hit ratio, which is what the serving metrics report.
        """
        fractions = self.hit_fractions()
        return {
            "tiers": {name: stats.as_dict()
                      for name, stats in self.stats.items()},
            "hit_fractions": fractions,
            "hit_ratio": fractions[self.tiers[0].name],
            "queries": sum(stats.hits for stats in self.stats.values()),
        }
