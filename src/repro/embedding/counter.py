"""Host-side ID frequency counting (``FCounter`` in Algorithm 1)."""

from __future__ import annotations

from collections import Counter

import numpy as np


class FrequencyCounter:
    """Counts categorical-ID occurrences and reports the top-k set.

    This is the statistics component of ``HybridHash``: during warm-up
    (and after it) every queried ID increments its count; periodically
    the hottest ``k`` IDs are promoted to Hot-storage.
    """

    def __init__(self):
        self._counts: Counter = Counter()

    def observe(self, ids: np.ndarray) -> None:
        """Record one query batch."""
        values, counts = np.unique(np.asarray(ids).ravel(),
                                   return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            self._counts[int(value)] += int(count)

    def count(self, key: int) -> int:
        """Occurrences recorded for one ID."""
        return self._counts.get(int(key), 0)

    def top_k(self, k: int) -> list:
        """The ``k`` most frequent IDs (most frequent first)."""
        return [key for key, _count in self.most_common(k)]

    def most_common(self, k: int) -> list:
        """``[(id, count), ...]`` for the ``k`` most frequent IDs.

        The statistics surface the shard planner's observed
        :class:`~repro.embedding.placement.LoadProfile` and the
        delta-snapshot hot-row ordering consume.  Count ties break
        deterministically on the smaller ID: ``Counter.most_common``
        falls back to insertion order, which depends on the batch
        arrival interleaving, so hot-set membership at the boundary
        would otherwise differ between runs that saw the same
        multiset of IDs in different orders.
        """
        if k <= 0:
            return []
        ordered = sorted(self._counts.items(),
                         key=lambda item: (-item[1], item[0]))
        return [(int(key), int(count)) for key, count in ordered[:k]]

    def merge(self, other: "FrequencyCounter") -> "FrequencyCounter":
        """Fold another counter's statistics into this one (in place).

        Lets per-worker counters combine into the global view the
        planner needs; returns ``self`` for chaining.
        """
        self._counts.update(other._counts)
        return self

    def distinct_ids(self) -> int:
        """How many distinct IDs have been observed."""
        return len(self._counts)

    def total_observations(self) -> int:
        """Total ID occurrences observed."""
        return sum(self._counts.values())

    def reset(self) -> None:
        """Forget all statistics."""
        self._counts.clear()
