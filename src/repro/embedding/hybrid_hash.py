"""``HybridHash``: the paper's Algorithm 1, line for line.

Cold-storage (DRAM) holds the authoritative hashmap; Hot-storage (GPU
device memory) is a scratchpad caching the top-k most frequently
queried embeddings.  During ``warmup_iters`` every query goes to
cold-storage while frequencies accumulate; afterwards queries split
between hot and cold, and every ``flush_iters`` iterations the hot set
is refreshed from the frequency counter.

If, at the end of warm-up, the whole table fits in Hot-storage, the
cache pins everything hot (Algorithm 1's "place all data on
Hot-storage" escape hatch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.counter import FrequencyCounter
from repro.embedding.table import EmbeddingTable


@dataclass
class CacheStats:
    """Running hit/miss statistics of a :class:`HybridHash`."""

    hot_hits: int = 0
    cold_misses: int = 0
    flushes: int = 0

    @property
    def queries(self) -> int:
        """Total post-warm-up lookups."""
        return self.hot_hits + self.cold_misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of post-warm-up lookups served by Hot-storage."""
        if self.queries == 0:
            return 0.0
        return self.hot_hits / self.queries

    def as_dict(self) -> dict:
        """Plain-dict snapshot for metrics export and benchmarks."""
        return {
            "hot_hits": self.hot_hits,
            "cold_misses": self.cold_misses,
            "flushes": self.flushes,
            "queries": self.queries,
            "hit_ratio": self.hit_ratio,
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combined counts of two caches/runs (``Stats`` protocol)."""
        return CacheStats(
            hot_hits=self.hot_hits + other.hot_hits,
            cold_misses=self.cold_misses + other.cold_misses,
            flushes=self.flushes + other.flushes)


class HybridHash:
    """Hot/cold cached embedding store (Algorithm 1).

    :param hot_bytes: Hot-storage capacity in bytes; the top-k is sized
        as ``hot_bytes // (dim * 4)`` rows.
    :param warmup_iters: iterations that only collect statistics.
    :param flush_iters: hot-set refresh period (L23-26 of Algorithm 1).
    """

    def __init__(self, table: EmbeddingTable, hot_bytes: float,
                 warmup_iters: int = 100, flush_iters: int = 100):
        if hot_bytes < 0:
            raise ValueError(f"hot_bytes must be >= 0, got {hot_bytes}")
        if warmup_iters < 0:
            raise ValueError("warmup_iters must be >= 0")
        if flush_iters < 1:
            raise ValueError("flush_iters must be >= 1")
        self.cold = table
        self.hot_capacity_rows = int(hot_bytes // (table.dim * 4))
        self.warmup_iters = warmup_iters
        self.flush_iters = flush_iters
        self.counter = FrequencyCounter()
        self.stats = CacheStats()
        #: per post-warm-up iteration hit ratio, the cache-health
        #: monitor's raw signal (entry k is iteration warmup_iters + k).
        self.hit_history: list = []
        #: iteration counts at which the hot set was flushed.
        self.flush_history: list = []
        self._hot_ids: set = set()
        #: sorted int64 mirror of ``_hot_ids`` for vectorized
        #: membership tests (``np.isin`` over a query batch).
        self._hot_arr: np.ndarray = np.empty(0, dtype=np.int64)
        self._iteration = 0
        self._pin_all = False

    @property
    def iteration(self) -> int:
        """Iterations processed so far."""
        return self._iteration

    @property
    def in_warmup(self) -> bool:
        """Whether the cache is still in its statistics-only phase."""
        return self._iteration < self.warmup_iters

    @property
    def hot_ids(self) -> frozenset:
        """The IDs currently pinned in Hot-storage."""
        return frozenset(self._hot_ids)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Algorithm 1's ``HYBRIDHASH(IDs, itr)``: fetch embeddings.

        Returns rows in query order; advances the iteration counter and
        performs the periodic hot-set flush.
        """
        ids = np.asarray(ids).ravel()
        if self.in_warmup:
            # L9-12: count and serve from cold storage.
            self.counter.observe(ids)
            result = self.cold.lookup(ids)
            self._iteration += 1
            if not self.in_warmup:
                self._maybe_pin_all()
                self._flush()
            return result

        # L14-21: split between hot hits and cold misses, keep counting.
        self.counter.observe(ids)
        if self._pin_all:
            hits = int(ids.size)
        else:
            keys = ids.astype(np.int64, copy=False)
            hits = int(np.isin(keys, self._hot_arr,
                               assume_unique=False).sum())
        self.stats.hot_hits += hits
        self.stats.cold_misses += int(ids.size) - hits
        self.hit_history.append(hits / ids.size if ids.size else 0.0)
        result = self.cold.lookup(ids)

        self._iteration += 1
        # L23-26: periodic refresh of the hot set.
        if self._iteration % self.flush_iters == 0:
            self._flush()
        return result

    def update(self, ids: np.ndarray, deltas: np.ndarray) -> None:
        """Apply gradient deltas; cold storage is authoritative."""
        self.cold.scatter_add(ids, deltas)

    def batch_hit_ratio(self, ids: np.ndarray) -> float:
        """Hit ratio this batch of unique IDs would see (no side effects)."""
        unique = np.unique(np.asarray(ids).ravel())
        if unique.size == 0:
            return 0.0
        if self._pin_all:
            return 1.0
        hits = int(np.isin(unique.astype(np.int64, copy=False),
                           self._hot_arr).sum())
        return hits / unique.size

    def _maybe_pin_all(self) -> None:
        """Pin everything hot if capacity is *far beyond* the table.

        Algorithm 1's escape hatch only applies when Hot-storage
        comfortably exceeds the observed table (2x headroom here),
        because new IDs keep arriving in streaming workloads.
        """
        if self.counter.distinct_ids() * 2 <= self.hot_capacity_rows:
            self._pin_all = True

    def _flush(self) -> None:
        """Reload Hot-storage with the current top-k (L24-25)."""
        if self._pin_all:
            if self.counter.distinct_ids() <= self.hot_capacity_rows:
                return
            # The table outgrew Hot-storage after all: fall back to
            # top-k caching.
            self._pin_all = False
        self._hot_ids = set(self.counter.top_k(self.hot_capacity_rows))
        self._hot_arr = np.fromiter(self._hot_ids, dtype=np.int64,
                                    count=len(self._hot_ids))
        self._hot_arr.sort()
        self.stats.flushes += 1
        self.flush_history.append(self._iteration)
