"""Skew-aware shard placement for model-parallel embedding tables.

Naive hash sharding spreads IDs uniformly over workers, but lookup
*traffic* follows the Zipf-skewed ID frequencies of Fig. 3: the worker
that happens to own the hottest IDs serves a disproportionate share of
every AllToAllv exchange, and the slowest shard gates the collective.
This module plans placement from frequency statistics instead:

* a :class:`LoadProfile` summarizes one field's expected per-step
  lookup load — analytically from the bounded-Zipf model of a
  :class:`~repro.data.spec.FieldSpec`, or empirically from a
  :class:`~repro.embedding.counter.FrequencyCounter`;
* a :class:`ShardPlanner` turns profiles into a
  :class:`PlacementPlan`: IDs hot enough to appear in most workers'
  batches are *replicated* (served locally everywhere, no exchange),
  warm IDs get *dedicated* single-row placement, and the cold tail is
  hash-split into partitions; dedicated rows and tail partitions are
  packed onto workers by a greedy LPT rule minimizing the predicted
  max per-worker AllToAllv bytes subject to an HBM footprint budget;
* :func:`measure_exchange` prices a plan against actual per-worker ID
  batches, producing the per-worker byte loads the
  :class:`~repro.telemetry.monitor.SkewMonitor` and the ``shards``
  benchmark gate on.

Traffic is priced per lookup occurrence (the access-load model of
RecShard): ``Unique`` deduplicates within one worker's micro-batch,
but across workers and across slices every occurrence of an ID routes
one embedding row (forward) and one gradient row (backward) through
its owner, so per-worker bytes are occurrence counts times row bytes.
:func:`measure_exchange` can optionally deduplicate within each
worker's batch to model a perfectly fused per-step ``Unique``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.spec import FieldSpec
from repro.data.synthetic import BoundedZipf
from repro.embedding.sharding import shard_for_id

_FLOAT_BYTES = 4

#: Placement policies a plan can be built with.
PLACEMENT_POLICIES = ("hash", "planned")


def _as_id_array(ids) -> np.ndarray:
    return np.asarray(ids, dtype=np.int64).ravel()


def _rank_masses(zipf: BoundedZipf, count: int) -> np.ndarray:
    """Exact sampling probability of ranks ``0..count-1``.

    :meth:`BoundedZipf.sample` draws a continuous rank and floors it,
    so rank ``k`` carries the CDF mass of ``[k+1, k+2)`` — integrated
    here directly rather than via the point-mass approximation of
    :meth:`BoundedZipf.probability`, which overestimates the head and
    (at high skew) would leave no mass for the tail.
    """
    s = zipf.exponent
    v = float(zipf.vocab_size)
    edges = np.arange(1, count + 2, dtype=np.float64)
    if abs(s - 1.0) < 1e-9:
        cdf = np.log(edges) / np.log(v)
    else:
        cdf = (edges ** (1.0 - s) - 1.0) / (v ** (1.0 - s) - 1.0)
    cdf = np.minimum(cdf, 1.0)
    return np.diff(cdf)


@dataclass(frozen=True)
class LoadProfile:
    """Expected per-step lookup load of one embedding field.

    The hottest ``len(hot_ids)`` IDs are tracked individually; the
    rest of the vocabulary is summarized as ``tail_weight``.  Weights
    are expected lookup occurrences per global training step (all
    workers combined), so they are directly proportional to exchange
    bytes.

    :param hot_batch_prob: per hot ID, the probability that it appears
        at least once in a single worker's sub-batch — the replication
        criterion (an ID requested by most workers every step is
        cheaper to replicate than to exchange).
    """

    name: str
    dim: int
    vocab_size: int
    hot_ids: np.ndarray
    hot_weights: np.ndarray
    hot_batch_prob: np.ndarray
    tail_weight: float

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.vocab_size < 1:
            raise ValueError(
                f"vocab_size must be >= 1, got {self.vocab_size}")
        if not (len(self.hot_ids) == len(self.hot_weights)
                == len(self.hot_batch_prob)):
            raise ValueError("hot id/weight/probability lengths differ")
        if self.tail_weight < 0:
            raise ValueError("tail_weight must be >= 0")

    @property
    def total_weight(self) -> float:
        """Expected lookups per global step across the whole table."""
        return float(self.hot_weights.sum()) + self.tail_weight

    @classmethod
    def from_field(cls, spec: FieldSpec, *, batch_size: int,
                   num_workers: int,
                   hot_candidates: int = 512) -> "LoadProfile":
        """Analytic profile from a field's bounded-Zipf parameters.

        IDs are frequency ranks (rank 0 hottest), matching
        :class:`~repro.data.synthetic.BoundedZipf` samples.  Streams
        whose rank-to-ID mapping is permuted (e.g.
        :class:`~repro.data.synthetic.FieldSampler`) should be planned
        from observed statistics instead.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        zipf = BoundedZipf(spec.vocab_size, spec.zipf_exponent)
        count = min(int(hot_candidates), spec.vocab_size)
        ranks = np.arange(count, dtype=np.int64)
        probs = _rank_masses(zipf, count)
        per_worker_ids = batch_size * spec.seq_length
        total_ids = float(per_worker_ids * num_workers)
        weights = probs * total_ids
        batch_prob = 1.0 - (1.0 - np.minimum(probs, 1.0)) ** per_worker_ids
        tail = max(0.0, (1.0 - float(probs.sum())) * total_ids)
        return cls(name=spec.name, dim=spec.embedding_dim,
                   vocab_size=spec.vocab_size, hot_ids=ranks,
                   hot_weights=weights.astype(np.float64),
                   hot_batch_prob=batch_prob.astype(np.float64),
                   tail_weight=tail)

    @classmethod
    def from_counter(cls, name: str, counter, *, dim: int,
                     vocab_size: int, batch_size: int, num_workers: int,
                     hot_candidates: int = 512) -> "LoadProfile":
        """Observed profile from a ``FrequencyCounter``'s statistics.

        Counts are rescaled so weights are expected occurrences per
        global step of ``batch_size`` IDs per worker.
        """
        total = counter.total_observations()
        if total <= 0:
            raise ValueError(f"counter for {name!r} has no observations")
        items = counter.most_common(hot_candidates)
        ids = np.array([key for key, _count in items], dtype=np.int64)
        counts = np.array([count for _key, count in items],
                          dtype=np.float64)
        probs = counts / float(total)
        total_ids = float(batch_size * num_workers)
        weights = probs * total_ids
        batch_prob = 1.0 - (1.0 - np.minimum(probs, 1.0)) ** batch_size
        tail = max(0.0, (1.0 - float(probs.sum())) * total_ids)
        return cls(name=name, dim=int(dim), vocab_size=int(vocab_size),
                   hot_ids=ids, hot_weights=weights,
                   hot_batch_prob=batch_prob, tail_weight=tail)


@dataclass
class FieldPlacement:
    """Where one field's rows live.

    Ownership is resolved in three steps: replicated IDs are local on
    every worker (owner ``-1``); dedicated IDs map to their assigned
    worker; everything else hashes into ``len(tail_owners)`` tail
    partitions whose owners the planner balanced.
    """

    name: str
    dim: int
    vocab_size: int
    replicated: np.ndarray
    dedicated_ids: np.ndarray
    dedicated_owners: np.ndarray
    tail_owners: np.ndarray

    def __post_init__(self) -> None:
        self.replicated = np.sort(_as_id_array(self.replicated))
        dedicated = _as_id_array(self.dedicated_ids)
        owners = np.asarray(self.dedicated_owners, dtype=np.int64).ravel()
        if len(dedicated) != len(owners):
            raise ValueError("dedicated ids/owners lengths differ")
        order = np.argsort(dedicated)
        self.dedicated_ids = dedicated[order]
        self.dedicated_owners = owners[order]
        self.tail_owners = np.asarray(self.tail_owners,
                                      dtype=np.int64).ravel()
        if len(self.tail_owners) < 1:
            raise ValueError("tail_owners must not be empty")

    @property
    def row_bytes(self) -> int:
        return self.dim * _FLOAT_BYTES

    def owner_of(self, ids) -> np.ndarray:
        """Owning worker per ID; ``-1`` marks replicated (local) rows."""
        ids = _as_id_array(ids)
        partitions = shard_for_id(ids, len(self.tail_owners)) \
            if ids.size else ids
        owners = self.tail_owners[partitions] if ids.size \
            else np.zeros(0, dtype=np.int64)
        if self.dedicated_ids.size and ids.size:
            slot = np.searchsorted(self.dedicated_ids, ids)
            slot = np.minimum(slot, len(self.dedicated_ids) - 1)
            hit = self.dedicated_ids[slot] == ids
            owners[hit] = self.dedicated_owners[slot[hit]]
        if self.replicated.size and ids.size:
            slot = np.searchsorted(self.replicated, ids)
            slot = np.minimum(slot, len(self.replicated) - 1)
            owners[self.replicated[slot] == ids] = -1
        return owners

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "dim": self.dim,
            "vocab_size": self.vocab_size,
            "replicated": [int(value) for value in self.replicated],
            "dedicated_ids": [int(value)
                              for value in self.dedicated_ids],
            "dedicated_owners": [int(value)
                                 for value in self.dedicated_owners],
            "tail_owners": [int(value) for value in self.tail_owners],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FieldPlacement":
        return cls(
            name=payload["name"],
            dim=int(payload["dim"]),
            vocab_size=int(payload["vocab_size"]),
            replicated=np.array(payload["replicated"], dtype=np.int64),
            dedicated_ids=np.array(payload["dedicated_ids"],
                                   dtype=np.int64),
            dedicated_owners=np.array(payload["dedicated_owners"],
                                      dtype=np.int64),
            tail_owners=np.array(payload["tail_owners"],
                                 dtype=np.int64))


@dataclass
class PlacementPlan:
    """A full placement: per-field row ownership plus predictions.

    ``predicted_bytes`` / ``predicted_hbm`` are the planner's cost
    model per worker (AllToAllv bytes per step, resident row bytes);
    the *measured* counterparts come from :func:`measure_exchange`.
    """

    num_workers: int
    policy: str
    fields: dict = field(default_factory=dict)
    predicted_bytes: np.ndarray = field(
        default_factory=lambda: np.zeros(1))
    predicted_hbm: np.ndarray = field(
        default_factory=lambda: np.zeros(1))

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {PLACEMENT_POLICIES}")
        self.predicted_bytes = np.asarray(self.predicted_bytes,
                                          dtype=np.float64)
        self.predicted_hbm = np.asarray(self.predicted_hbm,
                                        dtype=np.float64)

    def field_placement(self, name: str) -> FieldPlacement:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"field {name!r} not in plan; "
                f"known: {sorted(self.fields)}") from None

    def owner_of(self, field_name: str, ids) -> np.ndarray:
        """Owning worker per ID for one field (``-1`` = replicated)."""
        return self.field_placement(field_name).owner_of(ids)

    @property
    def replicated_rows(self) -> int:
        """Rows held by *every* worker (hot-ID replication)."""
        return sum(entry.replicated.size for entry in
                   self.fields.values())

    def predicted_ratio(self) -> float:
        """Predicted max/mean per-worker AllToAllv bytes."""
        return max_mean_ratio(self.predicted_bytes)

    def summary(self) -> dict:
        """JSON-ready headline numbers for CLI/experiment output."""
        return {
            "policy": self.policy,
            "workers": self.num_workers,
            "fields": len(self.fields),
            "replicated_rows": self.replicated_rows,
            "dedicated_rows": sum(entry.dedicated_ids.size
                                  for entry in self.fields.values()),
            "predicted_max_bytes": float(self.predicted_bytes.max())
            if self.predicted_bytes.size else 0.0,
            "predicted_ratio": self.predicted_ratio(),
            "predicted_hbm_max_bytes": float(self.predicted_hbm.max())
            if self.predicted_hbm.size else 0.0,
        }

    def as_dict(self) -> dict:
        """Lossless plain-dict form; round-trips via :meth:`from_dict`."""
        return {
            "num_workers": self.num_workers,
            "policy": self.policy,
            "fields": {name: entry.as_dict()
                       for name, entry in sorted(self.fields.items())},
            "predicted_bytes": [float(value)
                                for value in self.predicted_bytes],
            "predicted_hbm": [float(value)
                              for value in self.predicted_hbm],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlacementPlan":
        return cls(
            num_workers=int(payload["num_workers"]),
            policy=payload["policy"],
            fields={name: FieldPlacement.from_dict(entry)
                    for name, entry in payload["fields"].items()},
            predicted_bytes=np.array(payload["predicted_bytes"],
                                     dtype=np.float64),
            predicted_hbm=np.array(payload["predicted_hbm"],
                                   dtype=np.float64))


def max_mean_ratio(loads) -> float:
    """Max/mean of a per-worker load vector; 1.0 when perfectly flat.

    An all-zero load (no exchange at all — e.g. every hot row
    replicated, or a single worker) counts as perfectly balanced.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return 1.0
    mean = float(loads.mean())
    if mean <= 0.0:
        return 1.0
    return float(loads.max()) / mean


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of the :class:`ShardPlanner`.

    :param partitions_per_worker: hash partitions of the cold tail per
        worker; more partitions give the LPT packer finer granularity.
    :param hot_candidates: IDs tracked individually per field when
        profiles are built through the planner's convenience paths.
    :param replicate_threshold: minimum probability of appearing in a
        single worker's batch for an ID to be replicated; below it hot
        IDs get dedicated (balanced, but still exchanged) placement.
    :param max_replicated_per_field: replication budget per field
        (replicated rows cost ``num_workers`` copies of HBM).
    :param hbm_budget_bytes: optional per-worker resident-bytes budget
        the LPT packer respects when it can.
    """

    partitions_per_worker: int = 8
    hot_candidates: int = 512
    replicate_threshold: float = 0.5
    max_replicated_per_field: int = 1024
    hbm_budget_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.partitions_per_worker < 1:
            raise ValueError("partitions_per_worker must be >= 1")
        if self.hot_candidates < 0:
            raise ValueError("hot_candidates must be >= 0")
        if not 0.0 < self.replicate_threshold <= 1.0:
            raise ValueError("replicate_threshold must be in (0, 1]")
        if self.max_replicated_per_field < 0:
            raise ValueError("max_replicated_per_field must be >= 0")


class ShardPlanner:
    """Builds :class:`PlacementPlan`\\ s from load profiles.

    The packing objective is the predicted max per-worker AllToAllv
    bytes (the quantity that gates every exchange); HBM footprint is
    the constraint: items go to the least-loaded worker whose budget
    still fits them, falling back to the globally least-HBM-loaded
    worker when nothing fits.
    """

    def __init__(self, num_workers: int,
                 config: PlannerConfig | None = None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.config = config or PlannerConfig()

    # -- profile convenience --------------------------------------------

    def profiles_for_fields(self, specs, batch_size: int) -> list:
        """Analytic profiles for an iterable of ``FieldSpec``."""
        return [LoadProfile.from_field(
            spec, batch_size=batch_size, num_workers=self.num_workers,
            hot_candidates=self.config.hot_candidates)
            for spec in specs]

    def plan_fields(self, specs, batch_size: int,
                    policy: str = "planned") -> PlacementPlan:
        """Analytic plan straight from field specs."""
        return self.plan(self.profiles_for_fields(specs, batch_size),
                         policy=policy)

    # -- planning -------------------------------------------------------

    def plan(self, profiles, policy: str = "planned") -> PlacementPlan:
        """Produce a placement for the given load profiles.

        ``policy="hash"`` reproduces plain hash sharding (the
        baseline) through the same :class:`PlacementPlan` interface:
        tail partition ``p`` belongs to worker ``p % num_workers``,
        which is bit-identical to
        :func:`~repro.embedding.sharding.shard_for_id` ownership.
        """
        profiles = list(profiles)
        if not profiles:
            raise ValueError("at least one load profile is required")
        names = [profile.name for profile in profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in profiles: {names}")
        if policy == "hash":
            return self._hash_plan(profiles)
        if policy != "planned":
            raise ValueError(
                f"unknown policy {policy!r}; "
                f"expected one of {PLACEMENT_POLICIES}")
        return self._planned(profiles)

    def _hash_plan(self, profiles) -> PlacementPlan:
        workers = self.num_workers
        partitions = self.config.partitions_per_worker * workers
        owners = np.arange(partitions, dtype=np.int64) % workers
        fields = {}
        exchange = np.zeros(workers)
        hbm = np.zeros(workers)
        empty = np.zeros(0, dtype=np.int64)
        for profile in profiles:
            fields[profile.name] = FieldPlacement(
                name=profile.name, dim=profile.dim,
                vocab_size=profile.vocab_size, replicated=empty,
                dedicated_ids=empty, dedicated_owners=empty,
                tail_owners=owners.copy())
            self._accumulate_hash_cost(profile, fields[profile.name],
                                       exchange, hbm)
        return PlacementPlan(num_workers=workers, policy="hash",
                             fields=fields, predicted_bytes=exchange,
                             predicted_hbm=hbm)

    def _accumulate_hash_cost(self, profile, placement, exchange,
                              hbm) -> None:
        """Predicted per-worker cost of hash-sharding one field.

        Hot IDs land on deterministic hash owners, so the prediction
        reflects the actual (not average-case) imbalance of the hash.
        """
        workers = self.num_workers
        row = profile.dim * _FLOAT_BYTES
        remote = (workers - 1) / workers if workers > 1 else 0.0
        if profile.hot_ids.size:
            owners = placement.owner_of(profile.hot_ids)
            weights = profile.hot_weights * remote * row
            np.add.at(exchange, owners, weights)
            np.add.at(hbm, owners, float(row))
        exchange += profile.tail_weight * remote * row / workers
        tail_rows = max(0, profile.vocab_size - profile.hot_ids.size)
        hbm += tail_rows * row / workers

    def _planned(self, profiles) -> PlacementPlan:
        config = self.config
        workers = self.num_workers
        partitions = config.partitions_per_worker * workers
        remote = (workers - 1) / workers if workers > 1 else 0.0

        # One packing item per dedicated hot ID and per tail hash
        # partition, across all fields, so hot fields can lean on the
        # slack of cold ones.
        items = []  # (exchange_bytes, hbm_bytes, field, kind, payload)
        replicated: dict = {}
        for profile in profiles:
            row = profile.dim * _FLOAT_BYTES
            replicate_mask = np.zeros(profile.hot_ids.size, dtype=bool)
            if workers > 1 and profile.hot_ids.size:
                replicate_mask = (profile.hot_batch_prob
                                  >= config.replicate_threshold)
                budget = config.max_replicated_per_field
                if replicate_mask.sum() > budget:
                    # Keep the heaviest IDs inside the budget.
                    order = np.argsort(-profile.hot_weights)
                    keep = order[np.isin(
                        order, np.flatnonzero(replicate_mask))][:budget]
                    replicate_mask = np.zeros_like(replicate_mask)
                    replicate_mask[keep] = True
            replicated[profile.name] = profile.hot_ids[replicate_mask]
            for index in np.flatnonzero(~replicate_mask):
                items.append((
                    float(profile.hot_weights[index]) * remote * row,
                    float(row), profile.name, "id",
                    int(profile.hot_ids[index])))
            tail_rows = max(0, profile.vocab_size - profile.hot_ids.size)
            per_partition_bytes = (profile.tail_weight * remote * row
                                   / partitions)
            per_partition_hbm = tail_rows * row / partitions
            for part in range(partitions):
                items.append((per_partition_bytes, per_partition_hbm,
                              profile.name, "tail", part))

        assignment = self._lpt_pack(items)

        fields = {}
        exchange = np.zeros(workers)
        hbm = np.zeros(workers)
        empty = np.zeros(0, dtype=np.int64)
        for profile in profiles:
            row = profile.dim * _FLOAT_BYTES
            dedicated_ids = []
            dedicated_owners = []
            tail_owners = np.zeros(partitions, dtype=np.int64)
            for (cost, mem, name, kind, payload), worker in assignment:
                if name != profile.name:
                    continue
                if kind == "id":
                    dedicated_ids.append(payload)
                    dedicated_owners.append(worker)
                else:
                    tail_owners[payload] = worker
                exchange[worker] += cost
                hbm[worker] += mem
            hbm += replicated[profile.name].size * float(row)
            fields[profile.name] = FieldPlacement(
                name=profile.name, dim=profile.dim,
                vocab_size=profile.vocab_size,
                replicated=replicated[profile.name],
                dedicated_ids=np.array(dedicated_ids or empty,
                                       dtype=np.int64),
                dedicated_owners=np.array(dedicated_owners or empty,
                                          dtype=np.int64),
                tail_owners=tail_owners)
        return PlacementPlan(num_workers=workers, policy="planned",
                             fields=fields, predicted_bytes=exchange,
                             predicted_hbm=hbm)

    def _lpt_pack(self, items) -> list:
        """Greedy LPT: heaviest item first onto the least-loaded worker.

        Returns ``[(item, worker), ...]``.  The load is predicted
        exchange bytes; the HBM budget (when configured) vetoes
        workers that would overflow, unless every worker would.
        """
        budget = self.config.hbm_budget_bytes
        # Sort by descending cost; index breaks ties deterministically.
        order = sorted(range(len(items)),
                       key=lambda i: (-items[i][0], i))
        # Heap entries are (exchange load, HBM load at push, worker):
        # equal exchange loads (e.g. many zero-cost cold partitions)
        # tie-break onto the least-memory-loaded worker instead of
        # piling onto one.
        heap = [(0.0, 0.0, worker) for worker in range(self.num_workers)]
        heapq.heapify(heap)
        hbm = np.zeros(self.num_workers)
        assignment = []
        for index in order:
            item = items[index]
            cost, mem = item[0], item[1]
            popped = []
            chosen = None
            while heap:
                load, _pushed_hbm, worker = heapq.heappop(heap)
                if budget is None or hbm[worker] + mem <= budget:
                    chosen = (load, worker)
                    break
                popped.append((load, hbm[worker], worker))
            if chosen is None:
                # Nothing fits: overflow onto the least-HBM worker.
                worker = int(np.argmin(hbm))
                entry = next((e for e in popped if e[2] == worker),
                             popped[0])
                popped.remove(entry)
                chosen = (entry[0], entry[2])
            for entry in popped:
                heapq.heappush(heap, entry)
            load, worker = chosen
            hbm[worker] += mem
            heapq.heappush(heap, (load + cost, hbm[worker], worker))
            assignment.append((item, worker))
        return assignment


@dataclass(frozen=True)
class ExchangeLoad:
    """Measured per-worker AllToAllv bytes of one (or more) steps."""

    per_worker_bytes: np.ndarray
    local_bytes: float = 0.0
    replicated_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return float(self.per_worker_bytes.sum())

    @property
    def max_bytes(self) -> float:
        return float(self.per_worker_bytes.max()) \
            if self.per_worker_bytes.size else 0.0

    @property
    def mean_bytes(self) -> float:
        return float(self.per_worker_bytes.mean()) \
            if self.per_worker_bytes.size else 0.0

    @property
    def max_mean_ratio(self) -> float:
        return max_mean_ratio(self.per_worker_bytes)

    def merge(self, other: "ExchangeLoad") -> "ExchangeLoad":
        """Combine loads from multiple steps/fields (element-wise)."""
        if len(self.per_worker_bytes) != len(other.per_worker_bytes):
            raise ValueError("cannot merge loads of different widths")
        return ExchangeLoad(
            per_worker_bytes=self.per_worker_bytes
            + other.per_worker_bytes,
            local_bytes=self.local_bytes + other.local_bytes,
            replicated_bytes=self.replicated_bytes
            + other.replicated_bytes)

    def as_dict(self) -> dict:
        return {
            "per_worker_bytes": [float(value)
                                 for value in self.per_worker_bytes],
            "local_bytes": self.local_bytes,
            "replicated_bytes": self.replicated_bytes,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "mean_bytes": self.mean_bytes,
            "max_mean_ratio": self.max_mean_ratio,
        }


def measure_exchange(plan: PlacementPlan, field_name: str, batches,
                     dedupe: bool = False) -> ExchangeLoad:
    """Price one field's AllToAllv under ``plan`` on real sub-batches.

    ``batches`` holds one ID array per worker (the worker's share of
    the global batch).  Each remote lookup occurrence charges one
    embedding row to the *owning* worker's send volume; lookups the
    requesting worker owns, and lookups of replicated rows, move no
    bytes.  With ``dedupe=True`` each distinct ID counts once per
    requesting worker (a perfectly fused per-step ``Unique``).
    """
    batches = list(batches)
    if len(batches) != plan.num_workers:
        raise ValueError(
            f"expected {plan.num_workers} per-worker batches, "
            f"got {len(batches)}")
    placement = plan.field_placement(field_name)
    row = placement.row_bytes
    per_worker = np.zeros(plan.num_workers)
    local = 0.0
    replicated = 0.0
    for worker, ids in enumerate(batches):
        ids = _as_id_array(ids)
        if ids.size == 0:
            continue
        unique, counts = np.unique(ids, return_counts=True)
        weights = np.ones_like(counts, dtype=np.float64) if dedupe \
            else counts.astype(np.float64)
        owners = placement.owner_of(unique)
        replicated += float(weights[owners == -1].sum()) * row
        local += float(weights[owners == worker].sum()) * row
        mask = (owners >= 0) & (owners != worker)
        np.add.at(per_worker, owners[mask], weights[mask] * row)
    return ExchangeLoad(per_worker_bytes=per_worker, local_bytes=local,
                        replicated_bytes=replicated)


def predict_imbalance(fields, num_workers: int, batch_size: int,
                      policy: str = "planned",
                      config: PlannerConfig | None = None) -> float:
    """Predicted AllToAllv max/mean shard-bytes ratio for a dataset.

    This is the analytic hook :class:`~repro.core.planner.PicassoPlanner`
    uses to price exchanges: it plans the dataset's fields under
    ``policy`` and returns the resulting predicted ratio (>= 1.0).
    Fields with identical ``(vocab, dim, seq, zipf)`` shape produce
    identical profiles — and, under hash sharding, identical hot-ID
    owners — so each distinct shape is planned once with its load
    scaled by multiplicity, keeping wide datasets (hundreds of fields)
    cheap to plan.
    """
    if num_workers < 2:
        return 1.0
    groups: dict = {}
    for spec in fields:
        key = (spec.vocab_size, spec.embedding_dim, spec.seq_length,
               spec.zipf_exponent)
        entry = groups.setdefault(key, [spec, 0])
        entry[1] += 1
    if not groups:
        return 1.0
    planner = ShardPlanner(num_workers, config)
    profiles = []
    for spec, count in groups.values():
        profile = LoadProfile.from_field(
            spec, batch_size=batch_size, num_workers=num_workers,
            hot_candidates=planner.config.hot_candidates)
        if count > 1:
            profile = replace(
                profile, hot_weights=profile.hot_weights * count,
                tail_weight=profile.tail_weight * count)
        profiles.append(profile)
    return max(1.0, planner.plan(profiles, policy=policy)
               .predicted_ratio())


def compare_policies(profiles, batches_by_field, num_workers: int,
                     config: PlannerConfig | None = None,
                     dedupe: bool = False) -> dict:
    """Hash vs planned placement on the same measured traffic.

    Returns ``{"hash": ExchangeLoad, "planned": ExchangeLoad,
    "plans": {...}}`` with loads summed across fields — the single
    comparison the ``shards`` bench, the experiment table and the
    acceptance tests all reduce to.
    """
    profiles = list(profiles)
    planner = ShardPlanner(num_workers, config)
    result: dict = {"plans": {}}
    for policy in PLACEMENT_POLICIES:
        plan = planner.plan(profiles, policy=policy)
        combined = ExchangeLoad(
            per_worker_bytes=np.zeros(num_workers))
        for profile in profiles:
            load = measure_exchange(plan, profile.name,
                                    batches_by_field[profile.name],
                                    dedupe=dedupe)
            combined = combined.merge(load)
        result[policy] = combined
        result["plans"][policy] = plan
    return result
