"""Model-parallel sharding of embedding tables across executors.

The hybrid strategy partitions every embedding table across all
PICASSO-Executors; the ``Partition`` operator routes each unique ID to
its owning shard and ``Shuffle`` exchanges the remote ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def shard_for_id(ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Owning shard of each ID (stable modulo hashing)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    ids = np.asarray(ids, dtype=np.int64).ravel()
    # Multiplicative mixing avoids pathological striding in ID space.
    mixed = (ids * np.int64(2654435761)) & np.int64(0x7FFFFFFFFFFFFFFF)
    return (mixed % num_shards).astype(np.int64)


@dataclass(frozen=True)
class ShardPlacement:
    """Placement of one worker within the model-parallel layout.

    By default ownership is plain hash sharding via
    :func:`shard_for_id`.  In *plan-backed* mode (``plan`` plus
    ``field_name`` set) ownership comes from a
    :class:`~repro.embedding.placement.PlacementPlan` instead: the
    planner's replicated rows (owner ``-1``) are local on every
    worker and never exchanged.
    """

    worker_index: int
    num_workers: int
    plan: object = None
    field_name: str = None

    def __post_init__(self) -> None:
        if not 0 <= self.worker_index < self.num_workers:
            raise ValueError(
                f"worker_index {self.worker_index} out of range for "
                f"{self.num_workers} workers")
        if self.plan is not None:
            if self.field_name is None:
                raise ValueError(
                    "plan-backed placement requires field_name")
            if self.plan.num_workers != self.num_workers:
                raise ValueError(
                    f"plan built for {self.plan.num_workers} workers, "
                    f"placement has {self.num_workers}")
            # Fails fast when the field is unknown to the plan.
            self.plan.field_placement(self.field_name)

    def owners_of(self, ids: np.ndarray) -> np.ndarray:
        """Owning worker per ID (``-1`` = replicated, local everywhere)."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if self.plan is not None:
            return self.plan.owner_of(self.field_name, ids)
        return shard_for_id(ids, self.num_workers)

    def partition(self, ids: np.ndarray) -> tuple:
        """Split unique IDs into (local_ids, remote_ids_by_worker).

        Mirrors the ``Partition`` operator: local IDs are gathered from
        this worker's shard; remote IDs are exchanged via AllToAllv.
        Replicated rows of a plan-backed placement count as local.
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        owners = self.owners_of(ids)
        local = ids[(owners == self.worker_index) | (owners == -1)]
        remote = {
            worker: ids[owners == worker]
            for worker in range(self.num_workers)
            if worker != self.worker_index
        }
        return local, remote

    def local_fraction(self, ids: np.ndarray) -> float:
        """Measured share of unique IDs owned locally (~1/num_workers)."""
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        if ids.size == 0:
            return 0.0
        owners = self.owners_of(ids)
        return float(np.mean((owners == self.worker_index)
                             | (owners == -1)))
