"""Model-parallel sharding of embedding tables across executors.

The hybrid strategy partitions every embedding table across all
PICASSO-Executors; the ``Partition`` operator routes each unique ID to
its owning shard and ``Shuffle`` exchanges the remote ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def shard_for_id(ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Owning shard of each ID (stable modulo hashing)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    ids = np.asarray(ids, dtype=np.int64).ravel()
    # Multiplicative mixing avoids pathological striding in ID space.
    mixed = (ids * np.int64(2654435761)) & np.int64(0x7FFFFFFFFFFFFFFF)
    return (mixed % num_shards).astype(np.int64)


@dataclass(frozen=True)
class ShardPlacement:
    """Placement of one worker within the model-parallel layout."""

    worker_index: int
    num_workers: int

    def __post_init__(self) -> None:
        if not 0 <= self.worker_index < self.num_workers:
            raise ValueError(
                f"worker_index {self.worker_index} out of range for "
                f"{self.num_workers} workers")

    def partition(self, ids: np.ndarray) -> tuple:
        """Split unique IDs into (local_ids, remote_ids_by_worker).

        Mirrors the ``Partition`` operator: local IDs are gathered from
        this worker's shard; remote IDs are exchanged via AllToAllv.
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        owners = shard_for_id(ids, self.num_workers)
        local = ids[owners == self.worker_index]
        remote = {
            worker: ids[owners == worker]
            for worker in range(self.num_workers)
            if worker != self.worker_index
        }
        return local, remote

    def local_fraction(self, ids: np.ndarray) -> float:
        """Measured share of unique IDs owned locally (~1/num_workers)."""
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        if ids.size == 0:
            return 0.0
        owners = shard_for_id(ids, self.num_workers)
        return float(np.mean(owners == self.worker_index))
