"""Embedding storage: dynamic hash tables, caching, and sharding.

Implements the paper's embedding substrate: hashmap-backed dynamic
embedding tables (industrial tables grow with new IDs), the
``HybridHash`` hot/cold cache of Algorithm 1, and the model-parallel
sharding used by the hybrid strategy.
"""

from repro.embedding.table import EmbeddingTable
from repro.embedding.counter import FrequencyCounter
from repro.embedding.hybrid_hash import CacheStats, HybridHash
from repro.embedding.sharding import ShardPlacement, shard_for_id
from repro.embedding.multilevel import CacheTier, MultiLevelCache
from repro.embedding.placement import (
    ExchangeLoad,
    FieldPlacement,
    LoadProfile,
    PlacementPlan,
    PlannerConfig,
    ShardPlanner,
    compare_policies,
    max_mean_ratio,
    measure_exchange,
    predict_imbalance,
)

__all__ = [
    "EmbeddingTable",
    "FrequencyCounter",
    "CacheStats",
    "HybridHash",
    "ShardPlacement",
    "shard_for_id",
    "CacheTier",
    "MultiLevelCache",
    "ExchangeLoad",
    "FieldPlacement",
    "LoadProfile",
    "PlacementPlan",
    "PlannerConfig",
    "ShardPlanner",
    "compare_policies",
    "max_mean_ratio",
    "measure_exchange",
    "predict_imbalance",
]
