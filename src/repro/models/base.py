"""Model specification types and interaction-module cost formulas.

A WDL model (paper Fig. 2) = embedding layer over feature fields
+ feature-interaction layer (several constituent modules over field
groups) + MLP head.  The cost formulas here give FLOPs *per training
instance* for the forward pass; backward costs are derived as 2x in the
graph builder, the standard approximation for dense layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.data.spec import DatasetSpec


class InteractionKind(str, Enum):
    """Feature-interaction module families used by the model zoo."""

    CONCAT = "concat"  # pure concatenation (W&D deep side)
    SUM_POOL = "sum_pool"  # sum pooling of sequence embeddings
    LINEAR = "linear"  # wide/LR side: weighted sum of one-hot features
    FM = "fm"  # factorization machine second-order term
    DOT = "dot"  # DLRM pairwise dot interaction
    CROSS = "cross"  # DCN cross network
    CIN = "cin"  # xDeepFM compressed interaction network
    ATTENTION = "attention"  # DIN target attention over a sequence
    GRU = "gru"  # DIEN interest evolution GRU
    AUGRU = "augru"  # DIEN attention-update GRU
    TRANSFORMER = "transformer"  # DSIN session self-attention
    COACTION = "coaction"  # CAN co-action micro-MLPs per feature pair
    EXPERT = "expert"  # MMoE expert MLP
    GATE = "gate"  # MMoE per-task softmax gate
    GRAPH = "graph"  # ATBRG relational-graph aggregation
    STAR_FCN = "star_fcn"  # STAR topology shared+domain FCN
    TOWER = "tower"  # two-tower DNN side tower

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InteractionKind.{self.name}"


@dataclass(frozen=True)
class InteractionModuleSpec:
    """One constituent feature-interaction module.

    :param fields: names of the sparse fields whose embeddings feed the
        module (a subset of the dataset's fields).
    :param hidden: module-specific width (attention units, GRU hidden
        size, expert layer width, ...).
    :param repeats: how many structurally identical copies the model
        instantiates (e.g. CAN applies co-action to many field pairs;
        MMoE owns 71 experts).
    """

    name: str
    kind: InteractionKind
    fields: tuple
    hidden: int = 32
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")


@dataclass(frozen=True)
class ModelSpec:
    """A complete WDL model over a dataset.

    :param mlp_layers: hidden sizes of the final MLP; the output layer
        (width 1, sigmoid) is implicit.
    :param num_tasks: prediction heads (MMoE-style multi-task models).
    """

    name: str
    dataset: DatasetSpec
    modules: tuple
    mlp_layers: tuple = (512, 256, 128)
    num_tasks: int = 1

    def __post_init__(self) -> None:
        known = {spec.name for spec in self.dataset.fields}
        for module in self.modules:
            missing = [name for name in module.fields if name not in known]
            if missing:
                raise ValueError(
                    f"module {module.name!r} references unknown fields "
                    f"{missing[:3]}...")

    @property
    def num_modules(self) -> int:
        """Total interaction module instances (counting repeats)."""
        return sum(module.repeats for module in self.modules)

    def field_specs(self, module: InteractionModuleSpec) -> list:
        """The :class:`FieldSpec` objects a module consumes."""
        return [self.dataset.field(name) for name in module.fields]

    def interaction_output_dim(self) -> int:
        """Width of the concatenated feature-interaction output."""
        total = 0
        for module in self.modules:
            dims = [spec.embedding_dim for spec in self.field_specs(module)]
            # Expert banks feed a gated mixture, so the MLP sees one
            # expert-width vector per task, not all experts concatenated.
            repeats = 1 if module.kind is InteractionKind.EXPERT \
                else module.repeats
            total += repeats * _module_output_dim(module, dims)
        return total + self.dataset.num_numeric

    def mlp_parameters(self) -> int:
        """Dense parameters of the MLP head (weights + biases)."""
        widths = [self.interaction_output_dim(), *self.mlp_layers,
                  self.num_tasks]
        return sum(w_in * w_out + w_out
                   for w_in, w_out in zip(widths[:-1], widths[1:]))

    def dense_parameters(self) -> int:
        """All data-parallel (non-embedding) parameters."""
        dense = self.mlp_parameters()
        for module in self.modules:
            dims = [spec.embedding_dim for spec in self.field_specs(module)]
            dense += module.repeats * _module_parameters(module, dims)
        return dense


def _module_output_dim(module: InteractionModuleSpec, dims: list) -> int:
    """Output width of one module instance given its input dims."""
    kind = module.kind
    total_dim = sum(dims)
    count = len(dims)
    if kind in (InteractionKind.CONCAT, InteractionKind.STAR_FCN):
        return total_dim
    if kind in (InteractionKind.SUM_POOL, InteractionKind.ATTENTION,
                InteractionKind.GRU, InteractionKind.AUGRU):
        return dims[0] if dims else 0
    if kind == InteractionKind.LINEAR:
        return 1
    if kind == InteractionKind.FM:
        return 1
    if kind == InteractionKind.DOT:
        return count * (count - 1) // 2
    if kind == InteractionKind.CROSS:
        return total_dim
    if kind == InteractionKind.CIN:
        return module.hidden
    if kind == InteractionKind.TRANSFORMER:
        return dims[0] if dims else 0
    if kind == InteractionKind.COACTION:
        return module.hidden
    if kind in (InteractionKind.EXPERT, InteractionKind.TOWER):
        return module.hidden
    if kind == InteractionKind.GATE:
        # Gate outputs weight the expert mixture internally; nothing is
        # concatenated into the MLP input.
        return 0
    if kind == InteractionKind.GRAPH:
        return dims[0] if dims else 0
    raise ValueError(f"unknown interaction kind: {kind}")


def _module_parameters(module: InteractionModuleSpec, dims: list) -> int:
    """Trainable dense parameters of one module instance."""
    kind = module.kind
    d = dims[0] if dims else 0
    total_dim = sum(dims)
    h = module.hidden
    if kind in (InteractionKind.CONCAT, InteractionKind.SUM_POOL,
                InteractionKind.DOT, InteractionKind.FM,
                InteractionKind.LINEAR):
        return 0
    if kind == InteractionKind.CROSS:
        return 3 * 2 * total_dim  # 3 cross layers: w + b each
    if kind == InteractionKind.CIN:
        return 2 * h * len(dims) * len(dims)
    if kind == InteractionKind.ATTENTION:
        return 4 * d * h
    if kind in (InteractionKind.GRU, InteractionKind.AUGRU):
        return 6 * d * d
    if kind == InteractionKind.TRANSFORMER:
        return 4 * d * d + 2 * d * h
    if kind == InteractionKind.COACTION:
        return d * h + h * h
    if kind in (InteractionKind.EXPERT, InteractionKind.TOWER,
                InteractionKind.STAR_FCN):
        # Expert/tower FCNs are multi-layer: input proj + 2 hidden.
        return total_dim * h + 2 * h * h
    if kind == InteractionKind.GATE:
        return total_dim * h
    if kind == InteractionKind.GRAPH:
        return 2 * d * d
    raise ValueError(f"unknown interaction kind: {kind}")


def interaction_flops_per_instance(module: InteractionModuleSpec,
                                   fields: list) -> float:
    """Forward FLOPs of one module instance for a single instance.

    Formulas follow the standard 2*MAC convention for dense math; ``L``
    is the behaviour-sequence length of the module's first field.
    """
    dims = [spec.embedding_dim for spec in fields]
    if not dims:
        return 0.0
    d = dims[0]
    total_dim = sum(dims)
    count = len(dims)
    seq = max(spec.seq_length for spec in fields)
    h = module.hidden
    kind = module.kind
    if kind == InteractionKind.CONCAT:
        return 0.0
    if kind == InteractionKind.LINEAR:
        return 2.0 * count
    if kind == InteractionKind.SUM_POOL:
        return float(seq * d)
    if kind == InteractionKind.FM:
        return 4.0 * count * d
    if kind == InteractionKind.DOT:
        return float(count * count * d)
    if kind == InteractionKind.CROSS:
        return 3 * 4.0 * total_dim  # 3 cross layers
    if kind == InteractionKind.CIN:
        return 2.0 * count * count * d * h
    if kind == InteractionKind.ATTENTION:
        return 2.0 * seq * (2 * d * h + h)
    if kind == InteractionKind.GRU:
        return 2.0 * seq * 3 * d * d
    if kind == InteractionKind.AUGRU:
        return 2.0 * seq * (3 * d * d + d * h)
    if kind == InteractionKind.TRANSFORMER:
        return 2.0 * (seq * seq * d + 4 * seq * d * d + 2 * seq * d * h)
    if kind == InteractionKind.COACTION:
        return 2.0 * seq * (d * h + h * h)
    if kind in (InteractionKind.EXPERT, InteractionKind.TOWER,
                InteractionKind.STAR_FCN):
        return 2.0 * (total_dim * h + 2 * h * h)
    if kind == InteractionKind.GATE:
        return 2.0 * total_dim * h
    if kind == InteractionKind.GRAPH:
        return 2.0 * seq * 2 * d * d
    raise ValueError(f"unknown interaction kind: {kind}")


#: Framework-level micro-operations one module instance expands to in a
#: TF-style graph (forward only; the builder mirrors backward).  These
#: calibrate Tab. V's operation counts.
MODULE_MICRO_OPS = {
    InteractionKind.CONCAT: 4,
    InteractionKind.LINEAR: 6,
    InteractionKind.SUM_POOL: 6,
    InteractionKind.FM: 14,
    InteractionKind.DOT: 12,
    InteractionKind.CROSS: 30,
    InteractionKind.CIN: 46,
    InteractionKind.ATTENTION: 60,
    InteractionKind.GRU: 160,
    InteractionKind.AUGRU: 200,
    InteractionKind.TRANSFORMER: 110,
    InteractionKind.COACTION: 42,
    InteractionKind.EXPERT: 18,
    InteractionKind.GATE: 10,
    InteractionKind.GRAPH: 70,
    InteractionKind.STAR_FCN: 24,
    InteractionKind.TOWER: 18,
}
