"""WDL model zoo: declarative specs for every model the paper evaluates.

Models are *specifications*, not weights: a :class:`ModelSpec` names the
sparse fields it embeds, the feature-interaction modules it applies to
groups of fields, and the MLP head.  Two consumers exist:

* :mod:`repro.graph` expands a spec into the per-iteration operator DAG
  the simulator executes (throughput/utilization experiments);
* :mod:`repro.nn` instantiates a runnable numpy network from the same
  spec (accuracy experiments, Tab. III).
"""

from repro.models.base import (
    InteractionKind,
    InteractionModuleSpec,
    ModelSpec,
    interaction_flops_per_instance,
)
from repro.models.zoo import (
    MODEL_BUILDERS,
    atbrg,
    can,
    dcn,
    deepfm,
    dien,
    din,
    dlrm,
    dsin,
    lr,
    mmoe,
    star,
    two_tower_dnn,
    wide_deep,
    xdeepfm,
)

__all__ = [
    "InteractionKind",
    "InteractionModuleSpec",
    "ModelSpec",
    "interaction_flops_per_instance",
    "MODEL_BUILDERS",
    "atbrg",
    "can",
    "dcn",
    "deepfm",
    "dien",
    "din",
    "dlrm",
    "dsin",
    "lr",
    "mmoe",
    "star",
    "two_tower_dnn",
    "wide_deep",
    "xdeepfm",
]
