"""Builders for every model the paper evaluates.

Benchmark models (Tab. III / Fig. 10): DLRM, DeepFM (Criteo), DIN, DIEN
(Alibaba).  Production models (SS II-D, Tab. IV-VI): W&D on Product-1,
CAN on Product-2, MMoE (71 experts) on Product-3.  Tab. VII adds LR,
TwoTowerDNN, DCN, xDeepFM, ATBRG, DSIN and STAR, all over Product-2.

Every builder accepts any :class:`~repro.data.spec.DatasetSpec` and
adapts its module structure to the dataset's scalar/sequence fields,
which is exactly what the paper does when porting the twelve Tab. VII
models onto Product-2.
"""

from __future__ import annotations

from repro.data.spec import DatasetSpec
from repro.models.base import (
    InteractionKind,
    InteractionModuleSpec,
    ModelSpec,
)


def _scalar_fields(dataset: DatasetSpec) -> tuple:
    """Names of one-hot fields."""
    return tuple(spec.name for spec in dataset.fields if spec.seq_length == 1)


def _sequence_fields(dataset: DatasetSpec) -> tuple:
    """Names of behaviour-sequence fields."""
    return tuple(spec.name for spec in dataset.fields if spec.seq_length > 1)


def _sequence_pool_modules(dataset: DatasetSpec) -> list:
    """Default sum-pooling for sequence fields feeding a concat model."""
    return [
        InteractionModuleSpec(name=f"pool_{name}",
                              kind=InteractionKind.SUM_POOL,
                              fields=(name,))
        for name in _sequence_fields(dataset)
    ]


def lr(dataset: DatasetSpec) -> ModelSpec:
    """Logistic regression: the degenerate wide-only model."""
    modules = (InteractionModuleSpec(
        name="wide", kind=InteractionKind.LINEAR,
        fields=tuple(spec.name for spec in dataset.fields)),)
    return ModelSpec(name="LR", dataset=dataset, modules=modules,
                     mlp_layers=())


def wide_deep(dataset: DatasetSpec) -> ModelSpec:
    """Google's Wide&Deep: linear wide side + concat/MLP deep side."""
    all_fields = tuple(spec.name for spec in dataset.fields)
    modules = [
        InteractionModuleSpec(name="wide", kind=InteractionKind.LINEAR,
                              fields=all_fields),
        InteractionModuleSpec(name="deep_concat",
                              kind=InteractionKind.CONCAT,
                              fields=_scalar_fields(dataset)),
    ]
    modules += _sequence_pool_modules(dataset)
    return ModelSpec(name="W&D", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(1024, 512, 256))


def two_tower_dnn(dataset: DatasetSpec) -> ModelSpec:
    """Two-tower DNN (MOBIUS-style query/item matching)."""
    names = tuple(spec.name for spec in dataset.fields)
    half = max(1, len(names) // 2)
    modules = (
        InteractionModuleSpec(name="user_tower", kind=InteractionKind.TOWER,
                              fields=names[:half], hidden=256),
        InteractionModuleSpec(name="item_tower", kind=InteractionKind.TOWER,
                              fields=names[half:], hidden=256),
    )
    return ModelSpec(name="TwoTowerDNN", dataset=dataset, modules=modules,
                     mlp_layers=(256, 128))


def dlrm(dataset: DatasetSpec) -> ModelSpec:
    """Facebook's DLRM: pairwise dot interaction over field embeddings."""
    modules = [
        InteractionModuleSpec(name="dot", kind=InteractionKind.DOT,
                              fields=_scalar_fields(dataset)),
        InteractionModuleSpec(name="bottom_concat",
                              kind=InteractionKind.CONCAT,
                              fields=_scalar_fields(dataset)),
    ]
    modules += _sequence_pool_modules(dataset)
    return ModelSpec(name="DLRM", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(1024, 512, 256))


def deepfm(dataset: DatasetSpec) -> ModelSpec:
    """DeepFM: factorization machine + deep concat branch."""
    all_scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name="fm", kind=InteractionKind.FM,
                              fields=all_scalar),
        InteractionModuleSpec(name="deep_concat",
                              kind=InteractionKind.CONCAT,
                              fields=all_scalar),
    ]
    modules += _sequence_pool_modules(dataset)
    return ModelSpec(name="DeepFM", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(400, 400, 400))


def dcn(dataset: DatasetSpec) -> ModelSpec:
    """Deep & Cross Network: explicit cross layers + deep branch."""
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name="cross", kind=InteractionKind.CROSS,
                              fields=scalar),
        InteractionModuleSpec(name="deep_concat",
                              kind=InteractionKind.CONCAT, fields=scalar),
    ]
    modules += _sequence_pool_modules(dataset)
    return ModelSpec(name="DCN", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(512, 256))


def xdeepfm(dataset: DatasetSpec) -> ModelSpec:
    """xDeepFM: compressed interaction network + deep branch."""
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name="cin", kind=InteractionKind.CIN,
                              fields=scalar, hidden=128),
        InteractionModuleSpec(name="deep_concat",
                              kind=InteractionKind.CONCAT, fields=scalar),
    ]
    modules += _sequence_pool_modules(dataset)
    return ModelSpec(name="xDeepFM", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(400, 400))


def atbrg(dataset: DatasetSpec) -> ModelSpec:
    """ATBRG: adaptive target-behaviour relational graph aggregation."""
    seq = _sequence_fields(dataset)
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name=f"graph_{name}",
                              kind=InteractionKind.GRAPH, fields=(name,),
                              hidden=64)
        for name in seq
    ] or [InteractionModuleSpec(name="graph_scalar",
                                kind=InteractionKind.GRAPH,
                                fields=scalar[:8], hidden=64)]
    modules.append(InteractionModuleSpec(
        name="profile_concat", kind=InteractionKind.CONCAT, fields=scalar))
    return ModelSpec(name="ATBRG", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(512, 256))


def din(dataset: DatasetSpec) -> ModelSpec:
    """Deep Interest Network: target attention per behaviour sequence."""
    seq = _sequence_fields(dataset)
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name=f"att_{name}",
                              kind=InteractionKind.ATTENTION,
                              fields=(name,), hidden=36)
        for name in seq
    ]
    if scalar:
        modules.append(InteractionModuleSpec(
            name="profile_concat", kind=InteractionKind.CONCAT,
            fields=scalar))
    return ModelSpec(name="DIN", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(200, 80))


def dien(dataset: DatasetSpec) -> ModelSpec:
    """Deep Interest Evolution Network: GRU + AUGRU per sequence."""
    seq = _sequence_fields(dataset)
    scalar = _scalar_fields(dataset)
    modules = []
    for name in seq:
        modules.append(InteractionModuleSpec(
            name=f"gru_{name}", kind=InteractionKind.GRU, fields=(name,)))
        modules.append(InteractionModuleSpec(
            name=f"augru_{name}", kind=InteractionKind.AUGRU,
            fields=(name,), hidden=36))
    if scalar:
        modules.append(InteractionModuleSpec(
            name="profile_concat", kind=InteractionKind.CONCAT,
            fields=scalar))
    return ModelSpec(name="DIEN", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(200, 80))


def dsin(dataset: DatasetSpec) -> ModelSpec:
    """Deep Session Interest Network: session self-attention."""
    seq = _sequence_fields(dataset)
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name=f"sess_{name}",
                              kind=InteractionKind.TRANSFORMER,
                              fields=(name,), hidden=64)
        for name in seq
    ]
    if scalar:
        modules.append(InteractionModuleSpec(
            name="profile_concat", kind=InteractionKind.CONCAT,
            fields=scalar))
    return ModelSpec(name="DSIN", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(512, 256))


def can(dataset: DatasetSpec, coaction_pairs_per_sequence: int = 8) -> ModelSpec:
    """CAN: co-action micro-MLPs over target/behaviour feature pairs.

    The paper describes CAN as "a combination of feature interaction
    modules over a substantial number of feature fields" with heavy
    communication; each behaviour sequence co-acts with several target
    fields, so module count scales with the field count.
    """
    seq = _sequence_fields(dataset)
    scalar = _scalar_fields(dataset)
    modules = []
    for name in seq:
        modules.append(InteractionModuleSpec(
            name=f"coaction_{name}", kind=InteractionKind.COACTION,
            fields=(name,), hidden=64,
            repeats=coaction_pairs_per_sequence))
        modules.append(InteractionModuleSpec(
            name=f"att_{name}", kind=InteractionKind.ATTENTION,
            fields=(name,), hidden=36))
    if scalar:
        modules.append(InteractionModuleSpec(
            name="profile_concat", kind=InteractionKind.CONCAT,
            fields=scalar))
    return ModelSpec(name="CAN", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(1024, 512, 256))


def mmoe(dataset: DatasetSpec, num_experts: int = 71,
         num_tasks: int = 4) -> ModelSpec:
    """MMoE variant from the paper: DIN-derived with 71 experts."""
    seq = _sequence_fields(dataset)
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name=f"att_{name}",
                              kind=InteractionKind.ATTENTION,
                              fields=(name,), hidden=36)
        for name in seq
    ]
    expert_inputs = (scalar[:40] or scalar
                     or tuple(spec.name for spec in dataset.fields))
    modules.append(InteractionModuleSpec(
        name="expert", kind=InteractionKind.EXPERT, fields=expert_inputs,
        hidden=2048, repeats=num_experts))
    modules.append(InteractionModuleSpec(
        name="gate", kind=InteractionKind.GATE, fields=expert_inputs,
        hidden=num_experts, repeats=num_tasks))
    if scalar:
        modules.append(InteractionModuleSpec(
            name="profile_concat", kind=InteractionKind.CONCAT,
            fields=scalar))
    return ModelSpec(name="MMoE", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(512, 256), num_tasks=num_tasks)


def star(dataset: DatasetSpec, num_domains: int = 8) -> ModelSpec:
    """STAR: star-topology adaptive recommender for multi-domain CTR."""
    scalar = _scalar_fields(dataset)
    modules = [
        InteractionModuleSpec(name="star_fcn", kind=InteractionKind.STAR_FCN,
                              fields=scalar[:64] or scalar, hidden=512,
                              repeats=num_domains),
    ]
    modules += _sequence_pool_modules(dataset)
    return ModelSpec(name="STAR", dataset=dataset, modules=tuple(modules),
                     mlp_layers=(512, 256), num_tasks=num_domains)


#: Builder registry keyed by the names used in the paper's tables.
MODEL_BUILDERS = {
    "LR": lr,
    "W&D": wide_deep,
    "TwoTowerDNN": two_tower_dnn,
    "DLRM": dlrm,
    "DeepFM": deepfm,
    "DCN": dcn,
    "xDeepFM": xdeepfm,
    "ATBRG": atbrg,
    "DIN": din,
    "DIEN": dien,
    "DSIN": dsin,
    "CAN": can,
    "MMoE": mmoe,
    "STAR": star,
}
