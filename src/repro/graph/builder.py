"""Builds the per-iteration operator DAG for a WDL training step.

This module is the cost model: given a model spec, a cluster, and an
:class:`ExecutionPlan` (strategy + optimization knobs), it emits the
operator graph one worker executes per iteration, with every phase cost
derived from batch statistics and hardware specs.

Both the baselines (:mod:`repro.baselines`) and PICASSO
(:mod:`repro.core`) build their graphs here; they differ only in the
plans they construct, which keeps the comparison internally consistent
the way the paper's single-cluster methodology does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.spec import DatasetSpec, FieldSpec
from repro.data.loader import batch_wire_bytes
from repro.data.statistics import expected_unique_fraction
from repro.graph.graph import Graph
from repro.graph.op import Op, OpKind, efficiency_capped_rate
from repro.hardware.topology import ClusterSpec
from repro.models.base import (
    InteractionKind,
    ModelSpec,
    MODULE_MICRO_OPS,
    interaction_flops_per_instance,
)
from repro.sim.resource import Phase, ResourceKind

_FLOAT_BYTES = 4
_ID_BYTES = 8

#: Framework micro-operations per logical embedding op, per feature
#: field, in an unpacked TF-style graph.  Sequence fields multiply by
#: :data:`SEQ_MICRO_FACTOR` (ragged handling).  Calibrated against
#: Tab. V's operation counts.
EMB_MICRO_OPS = {
    OpKind.UNIQUE: 60,
    OpKind.PARTITION: 35,
    OpKind.GATHER: 95,
    OpKind.SHUFFLE: 70,
    OpKind.STITCH: 45,
    OpKind.SEGMENT_REDUCE: 90,
    OpKind.EMB_GRAD: 110,
    OpKind.OPT_SPARSE: 65,
}

#: Micro-op multiplier for behaviour-sequence fields.
SEQ_MICRO_FACTOR = 2.5

#: Fused kernels keep ~60% of their constituents' micro-ops.
FUSION_MICRO_FACTOR = 0.6


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the workload-to-hardware projection.

    Frozen (and therefore hashable): cost models ride inside
    :class:`~repro.core.config.PicassoConfig`, which keys the
    planner's process-wide plan cache on every run.
    """

    #: Host seconds one framework micro-op occupies the dispatch path
    #: end to end (kernel launch, executor bookkeeping, small host
    #: kernels).  TF 1.x profiles show ~10-30 us per small op.
    launch_per_micro_op: float = 12.0e-6
    #: Additional per-logical-op dispatch floor.
    launch_floor: float = 1.0e-6
    #: Hashmap probe amplification: bytes touched per ID byte looked up.
    hash_probe_factor: float = 2.0
    #: Kernel sizes needed to saturate the device (occupancy model).
    sm_saturation_flops: float = 8.0e7
    bw_saturation_bytes: float = 8.0e6
    net_saturation_bytes: float = 16.0e6
    #: Bus-transaction amplification of scattered embedding-row traffic
    #: (random 64-256 B rows burn far more bus cycles than their
    #: payload); charged as extra *work* so concurrent scattered ops
    #: cannot add up past the physical link.
    scatter_amplification: float = 8.0
    #: Packed gathers stage rows into contiguous bursts and waste less.
    packed_scatter_amplification: float = 6.0
    #: Backward compute costs this multiple of forward compute.
    backward_flops_factor: float = 2.0
    #: Optimizer state slots touched per parameter (Adagrad: grad+slot).
    optimizer_slots: int = 2
    #: Straggler inflation of synchronous collectives from skewed data.
    straggler_factor: float = 1.15
    #: Framework scheduling cost grows with graph size: beyond this many
    #: micro-ops per iteration, per-op dispatch degrades linearly (TF
    #: session-run overhead on very large graphs).
    graph_overhead_knee: float = 400_000.0


@dataclass
class EmbeddingGroup:
    """A unit of embedding execution: one field, or a packed set.

    Baselines use one group per field; PICASSO's D-Packing merges all
    fields sharing an embedding dimension (subject to Eq. 1 sharding).

    :param shard_fraction: portion of the packed work this shard
        carries (1.0 for unsharded groups).
    :param interleave_set: K-Interleaving set index (0-based); groups in
        the same set run concurrently, distinct sets are pipelined.
    :param excluded: preset-excluded groups skip interleave ordering.
    """

    name: str
    fields: tuple
    shard_fraction: float = 1.0
    interleave_set: int = 0
    excluded: bool = False

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError(f"group {self.name!r} has no fields")
        if not 0 < self.shard_fraction <= 1.0:
            raise ValueError(
                "shard_fraction must be in (0, 1], got "
                f"{self.shard_fraction}")

    @property
    def embedding_dim(self) -> int:
        """Width of this group's output embeddings (max across fields)."""
        return max(spec.embedding_dim for spec in self.fields)

    @property
    def is_packed(self) -> bool:
        """Whether this group merges multiple fields."""
        return len(self.fields) > 1

    @property
    def max_seq_factor(self) -> float:
        """Micro-op multiplier from the heaviest sequence field."""
        if any(spec.seq_length > 1 for spec in self.fields):
            return SEQ_MICRO_FACTOR
        return 1.0

    def ids_per_batch(self, batch_size: int) -> float:
        """Categorical IDs this group processes per batch."""
        total = sum(batch_size * spec.seq_length for spec in self.fields)
        return total * self.shard_fraction


def groups_per_field(dataset: DatasetSpec) -> list:
    """The unpacked baseline grouping: one group per feature field."""
    return [EmbeddingGroup(name=f"field:{spec.name}", fields=(spec,))
            for spec in dataset.fields]


class WorkloadStats:
    """Caches per-field batch statistics (unique-ID fractions)."""

    #: Shared measurement cache.  The statistic is a pure function of
    #: ``(vocab, skew, capped batch, seed)`` — sampling is seeded — so
    #: it is cached process-wide rather than per instance: planners are
    #: constructed per run, and re-sampling the same distributions
    #: dominated repeated plan builds.
    _shared_cache: dict = {}

    def __init__(self, seed: int = 7):
        self._seed = seed
        self._cache = WorkloadStats._shared_cache

    def unique_fraction(self, spec: FieldSpec, batch_ids: int) -> float:
        """Expected unique fraction for a batch of ``batch_ids`` IDs.

        Cached by the field's *distribution* (vocabulary, skew), so
        structurally identical fields — e.g. Tab. VIII's duplicated
        feature fields — share one measurement.
        """
        key = (spec.vocab_size, spec.zipf_exponent,
               min(batch_ids, 200_000), self._seed)
        cached = self._cache.get(key)
        if cached is None:
            cached = expected_unique_fraction(
                spec, batch_ids, seed=self._seed)
            self._cache[key] = cached
        return cached

    def group_unique_ids(self, group: EmbeddingGroup,
                         batch_size: int) -> float:
        """Expected unique IDs a group produces per batch."""
        total = 0.0
        for spec in group.fields:
            ids = batch_size * spec.seq_length
            total += ids * self.unique_fraction(spec, ids)
        return total * group.shard_fraction


@dataclass
class ExecutionPlan:
    """Everything needed to expand one training iteration into a graph.

    :param strategy: ``"ps-async"``, ``"ps-sync"``, ``"mp"``, ``"dp"``
        or ``"hybrid"`` (PICASSO's MP embeddings + DP dense).
    :param groups: embedding execution units (packed or per-field).
    :param fuse_kernels: K-Packing (Unique&Partition, Shuffle&Stitch).
    :param interleave_sets: number of K-Interleaving sets the groups
        are spread over (1 = no interleaving: all groups race).
    :param fine_grained_deps: let downstream modules start as soon as
        *their* groups finish instead of waiting on a global concat
        barrier (PICASSO) .
    :param micro_batches: D-Interleaving slice count.
    :param micro_batch_scope: ``"all"`` (slice from the embedding
        layer, Fig. 8b) or ``"mlp"`` (slice the dense tail, Fig. 8a).
    :param cache_hit_ratio: fraction of unique-ID lookups served from
        GPU Hot-storage (``None`` = no cache; lookups go to DRAM).
    :param io_overlap: prefetch batches so I/O overlaps compute.
    :param ps_bandwidth_factor: effective fraction of the NIC usable
        when pulling from parameter servers (congestion, Fig. 10).
    :param launch_scale: relative launch efficiency of the framework
        (PyTorch eager dispatch is cheaper than TF-PS graphs, etc.).
    """

    model: ModelSpec
    cluster: ClusterSpec
    batch_size: int
    strategy: str
    groups: list
    fuse_kernels: bool = False
    interleave_sets: int = 1
    fine_grained_deps: bool = False
    micro_batches: int = 1
    micro_batch_scope: str = "all"
    cache_hit_ratio: float | None = None
    io_overlap: bool = False
    ps_bandwidth_factor: float = 1.0
    ps_serving_rate: float = float("inf")
    net_stack_rate: float = float("inf")
    #: Wire-size factor of the input pipeline (HybridBackend's columnar
    #: layout ships roughly half the bytes of padded TFRecords).
    io_compression: float = 1.0
    launch_scale: float = 1.0
    cost: CostModel = field(default_factory=CostModel)
    #: Max/mean per-worker AllToAllv shard bytes from a
    #: :class:`~repro.embedding.placement.PlacementPlan`.  ``None``
    #: falls back to the cost model's generic ``straggler_factor``;
    #: a planner-supplied value prices the embedding exchanges with
    #: the placement's actual (im)balance — the gating shard.
    shard_imbalance: float | None = None
    #: Hot/cold lookahead pipelining (Hotline, arXiv 2204.05436): with
    #: a window deeper than one batch, the predicted-cold share of the
    #: next iteration's embedding rows is gathered and exchanged on a
    #: chained background prefetch stream while the current iteration
    #: computes.  ``prefetch_lookahead <= 1`` or the ``"fifo"`` null
    #: policy disables the stream (graph identical to the non-prefetch
    #: builder, byte for byte).
    prefetch_lookahead: int = 1
    prefetch_hot_threshold: float = 0.6
    prefetch_inflight_bytes: float = float("inf")
    prefetch_policy: str = "hotness"

    def __post_init__(self) -> None:
        known = {"ps-async", "ps-sync", "mp", "dp", "hybrid"}
        if self.strategy not in known:
            raise ValueError(f"unknown strategy {self.strategy!r}; "
                             f"expected one of {sorted(known)}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.micro_batches < 1:
            raise ValueError("micro_batches must be >= 1")
        if self.interleave_sets < 1:
            raise ValueError("interleave_sets must be >= 1")
        if self.micro_batch_scope not in ("all", "mlp"):
            raise ValueError("micro_batch_scope must be 'all' or 'mlp'")
        if self.cache_hit_ratio is not None and not (
                0.0 <= self.cache_hit_ratio <= 1.0):
            raise ValueError("cache_hit_ratio must be in [0, 1]")
        if self.shard_imbalance is not None and self.shard_imbalance < 1.0:
            raise ValueError("shard_imbalance must be >= 1.0")
        if self.prefetch_lookahead < 1:
            raise ValueError("prefetch_lookahead must be >= 1")
        if not 0.0 <= self.prefetch_hot_threshold <= 1.0:
            raise ValueError("prefetch_hot_threshold must be in [0, 1]")
        if self.prefetch_inflight_bytes <= 0:
            raise ValueError("prefetch_inflight_bytes must be > 0")
        if not self.prefetch_policy:
            raise ValueError("prefetch_policy must be non-empty")

    def signature(self) -> dict:
        """Canonical JSON-able description of the compiled graph's inputs.

        Everything :class:`IterationGraphBuilder` and the launch-cost
        projection read from the plan appears here — model and dataset
        shapes, cluster hardware, packing/interleaving/caching knobs,
        and the full cost model — so two plans with equal signatures
        compile to identical graphs.  The compile cache
        (:func:`repro.core.executor.compile_plan`) keys on the sha256
        config fingerprint of this dict.
        """
        from dataclasses import asdict

        model = self.model
        dataset = model.dataset
        return {
            "model": {
                "name": model.name,
                "mlp_layers": list(model.mlp_layers),
                "num_tasks": model.num_tasks,
                "modules": [
                    [m.name, m.kind.value, list(m.fields), m.hidden,
                     m.repeats] for m in model.modules],
            },
            "dataset": {
                "name": dataset.name,
                "num_numeric": dataset.num_numeric,
                "num_instances": dataset.num_instances,
                "fields": [
                    [f.name, f.vocab_size, f.embedding_dim, f.seq_length,
                     f.zipf_exponent] for f in dataset.fields],
            },
            "cluster": asdict(self.cluster),
            "batch_size": self.batch_size,
            "strategy": self.strategy,
            "groups": [
                [g.name, [f.name for f in g.fields], g.shard_fraction,
                 g.interleave_set, g.excluded] for g in self.groups],
            "fuse_kernels": self.fuse_kernels,
            "interleave_sets": self.interleave_sets,
            "fine_grained_deps": self.fine_grained_deps,
            "micro_batches": self.micro_batches,
            "micro_batch_scope": self.micro_batch_scope,
            "cache_hit_ratio": self.cache_hit_ratio,
            "io_overlap": self.io_overlap,
            "ps_bandwidth_factor": self.ps_bandwidth_factor,
            "ps_serving_rate": self.ps_serving_rate,
            "net_stack_rate": self.net_stack_rate,
            "io_compression": self.io_compression,
            "launch_scale": self.launch_scale,
            "shard_imbalance": self.shard_imbalance,
            "prefetch_lookahead": self.prefetch_lookahead,
            "prefetch_hot_threshold": self.prefetch_hot_threshold,
            "prefetch_inflight_bytes": self.prefetch_inflight_bytes,
            "prefetch_policy": self.prefetch_policy,
            "cost": asdict(self.cost),
        }

    def exchange_factor(self) -> float:
        """Inflation applied to AllToAllv exchange bytes.

        The collective completes when the most-loaded shard does, so
        exchanges are priced at the max (not mean) per-worker bytes:
        the placement plan's measured max/mean ratio when available,
        else the cost model's generic straggler factor.
        """
        if self.shard_imbalance is not None:
            return self.shard_imbalance
        return self.cost.straggler_factor

    def prefetch_share(self) -> float:
        """Fraction of cold gather/exchange work staged ahead.

        A deeper window covers more of the next batch
        (``1 - 1/lookahead`` of it is visible in time), and a higher
        hot threshold classifies more rows as cold-and-prefetchable.
        The ``"fifo"`` null policy and a depth-1 window yield 0.0 —
        no prefetch stream, the graph is unchanged.
        """
        if self.prefetch_lookahead <= 1 or self.prefetch_policy == "fifo":
            return 0.0
        window = 1.0 - 1.0 / self.prefetch_lookahead
        return self.prefetch_hot_threshold * window

    @property
    def uses_alltoall(self) -> bool:
        """Whether embeddings move via AllToAllv collectives."""
        return self.strategy in ("mp", "hybrid")

    @property
    def is_async(self) -> bool:
        """Whether parameter updates are asynchronous (PS-async)."""
        return self.strategy == "ps-async"


class IterationGraphBuilder:
    """Expands an :class:`ExecutionPlan` into operator graphs."""

    def __init__(self, plan: ExecutionPlan, stats: WorkloadStats | None = None):
        self.plan = plan
        self.stats = stats or WorkloadStats()
        self._node = plan.cluster.node
        self._workers = plan.cluster.num_workers
        self._field_to_group = {}
        for group in plan.groups:
            for spec in group.fields:
                self._field_to_group.setdefault(spec.name, group)
        # Background prefetch stream state: the stream is one chained
        # queue across iterations (its in-order issue is what the
        # inflight budget bounds).
        self._prev_prefetch: dict = {}
        self._iter_prefetch: dict = {}
        self._prefetch_bytes_cache = None

    # -- public API ---------------------------------------------------------

    def build(self, iterations: int = 1) -> Graph:
        """Emit a graph covering ``iterations`` chained training steps."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        graph = Graph(name=f"{self.plan.model.name}-{self.plan.strategy}")
        prev_tail = None
        prev_io = None
        for index in range(iterations):
            prev_tail, prev_io = self._build_iteration(
                graph, index, prev_tail, prev_io)
        return graph

    def activation_bytes(self) -> float:
        """Peak activation (feature-map) footprint on the device.

        Proportional to the effective batch per slice; D-Interleaving
        divides it, which is how PICASSO fits larger global batches
        (Fig. 8a, Tab. VII).
        """
        model = self.plan.model
        width = model.interaction_output_dim() + sum(model.mlp_layers)
        emb_width = sum(spec.embedding_dim * spec.seq_length
                        for spec in model.dataset.fields)
        slice_size = self.plan.batch_size / self.plan.micro_batches
        dense_part = slice_size * width * _FLOAT_BYTES * 2  # fwd + bwd
        if self.plan.micro_batch_scope == "all":
            emb_part = slice_size * emb_width * _FLOAT_BYTES
        else:
            emb_part = self.plan.batch_size * emb_width * _FLOAT_BYTES
        return dense_part + emb_part

    # -- internals ----------------------------------------------------------

    def _build_iteration(self, graph: Graph, index: int, prev_tail,
                         prev_io):
        plan = self.plan
        slices = plan.micro_batches if plan.micro_batch_scope == "all" else 1
        mlp_slices = plan.micro_batches

        io_op = self._io_op(graph, index)
        if prev_io is not None:
            graph.add_edge(prev_io, io_op)
        if not plan.io_overlap and prev_tail is not None:
            graph.add_edge(prev_tail, io_op)

        self._iter_prefetch = self._emit_prefetch_stream(graph, index,
                                                         io_op)

        tail_deps = []
        grad_outputs = []
        prev_slice_ops: dict = {}
        slice_join_ops = []
        for slice_index in range(slices):
            join = self._build_forward_backward(
                graph, index, slice_index, slices, mlp_slices // slices or 1,
                io_op, prev_tail, prev_slice_ops, grad_outputs)
            slice_join_ops.append(join)
        tail_deps.extend(slice_join_ops)

        update_ops = self._optimizer_and_comm(graph, index, grad_outputs,
                                              slice_join_ops)
        tail_deps.extend(update_ops)

        tail = Op(name=f"it{index}/step_end", kind=OpKind.CONTROL,
                  phases=[], micro_ops=0, tags={"layer": "control"})
        graph.add(tail)
        for op in tail_deps:
            graph.add_edge(op, tail)
        # Async PS lets the next step begin once local backward compute
        # is done (pushes drain in the background); sync strategies wait
        # for the full update barrier.
        sync_point = slice_join_ops[-1] if plan.is_async else tail
        return sync_point, io_op

    def _io_op(self, graph: Graph, index: int) -> Op:
        plan = self.plan
        wire = batch_wire_bytes(plan.model.dataset, plan.batch_size) \
            * plan.io_compression
        op = Op(
            name=f"it{index}/io",
            kind=OpKind.IO_READ,
            phases=[
                Phase(ResourceKind.NET, wire,
                      max_rate=self._net_rate(wire)),
                Phase(ResourceKind.DRAM, wire * 2.0,
                      max_rate=self._bw_rate(ResourceKind.DRAM, wire * 2.0)),
            ],
            micro_ops=max(4, plan.model.dataset.num_fields // 4),
            tags={"layer": "io"},
        )
        return graph.add(op)

    # -- hot/cold lookahead prefetch ----------------------------------------

    def _prefetch_dedup(self, group, batch: int) -> float:
        """Cross-batch reuse discount over the lookahead window.

        A window of ``L`` batches shares IDs (Zipf reuse), so staging
        its union once costs ``unique(L*B) / (L * unique(B))`` of what
        ``L`` independent per-batch fetches would — Hotline's key win.
        """
        window = self.plan.prefetch_lookahead
        if window <= 1:
            return 1.0
        per_batch = max(1.0, self.stats.group_unique_ids(group, batch))
        window_unique = max(1.0, self.stats.group_unique_ids(
            group, batch * window))
        return min(1.0, max(1.0 / window,
                            window_unique / (window * per_batch)))

    def _prefetch_group_bytes(self) -> dict:
        """Per-group bytes the background stream stages each iteration.

        Returns ``({group.name: (cold_bytes, remote_bytes)}, share)``.
        ``share`` is the fraction of the synchronous fetch the stream
        replaces (:meth:`ExecutionPlan.prefetch_share`, uniformly
        shrunk if the window would overrun ``prefetch_inflight_bytes``);
        the per-group bytes are the share further discounted by the
        window's cross-batch reuse (:meth:`_prefetch_dedup`) and, for
        the remote slice, priced without the straggler premium — bulk
        background staging is not latency-bound, so it does not pay
        the exchange factor the synchronous AllToAllv does.  The
        mapping is empty (and the share 0.0) when the stream is
        disabled.
        """
        if self._prefetch_bytes_cache is not None:
            return self._prefetch_bytes_cache
        plan = self.plan
        share = plan.prefetch_share()
        if share <= 0.0:
            self._prefetch_bytes_cache = ({}, 0.0)
            return self._prefetch_bytes_cache
        slices = plan.micro_batches if plan.micro_batch_scope == "all" else 1
        batch = plan.batch_size / slices
        cold_fraction = 1.0 - (plan.cache_hit_ratio or 0.0)
        raw = {}
        staged_total = 0.0
        for group in plan.groups:
            unique = max(1.0, self.stats.group_unique_ids(group,
                                                          int(batch)))
            emb_bytes = unique * group.embedding_dim * _FLOAT_BYTES \
                * slices
            dedup = self._prefetch_dedup(group, int(batch) * slices)
            cold = emb_bytes * cold_fraction * dedup
            remote = 0.0
            if plan.uses_alltoall and self._workers > 1:
                remote = emb_bytes * (self._workers - 1) / self._workers
                remote *= dedup
            raw[group.name] = (cold, remote)
            staged_total += (cold + remote) * share
        if staged_total > plan.prefetch_inflight_bytes:
            share *= plan.prefetch_inflight_bytes / staged_total
        self._prefetch_bytes_cache = (
            {name: (cold * share, remote * share)
             for name, (cold, remote) in raw.items()}, share)
        return self._prefetch_bytes_cache

    def _prefetch_phases(self, cold_bytes: float, remote_bytes: float,
                         packed: bool) -> list:
        """Hardware demands of one group's staged window slice.

        The stream stages rows in bulk, which is where its advantage
        over the synchronous path comes from: the window's union is
        copied sequentially (no scatter amplification — the random
        per-row layout is resolved on-device at stitch time), the hash
        probe runs once over sorted IDs, and the wire transfer is one
        window-coalesced chunk that reaches NIC saturation instead of
        the fragmentary per-slice AllToAllv rate.  Each direction is
        charged twice: the staged fetch plus the previous window's
        lazy flush — deferred cold-gradient pushback on the wire,
        dirty-row writeback (the updates that landed on the HBM copy
        while the row was staged) over PCIe and into the host table.
        """
        plan = self.plan
        phases = []
        # Rates are priced at the whole window flush, not this group's
        # slice: the stream issues one coalesced burst per iteration
        # and the per-group phases are bookkeeping slices of it.
        flush_cold, flush_wire = self._prefetch_flush_bytes()
        if cold_bytes > 0:
            probe_factor = plan.cost.hash_probe_factor + 1.0
            phases.append(Phase(
                ResourceKind.DRAM, cold_bytes * probe_factor,
                max_rate=self._bw_rate(ResourceKind.DRAM,
                                       flush_cold * probe_factor)))
            phases.append(Phase(
                ResourceKind.PCIE, cold_bytes * 2.0,
                max_rate=self._bw_rate(ResourceKind.PCIE,
                                       flush_cold * 2.0)))
        if remote_bytes > 0:
            phases.append(Phase(ResourceKind.NET, remote_bytes * 2.0,
                                max_rate=self._net_rate(flush_wire)))
        return phases or [self._hbm_phase(1.0)]

    def _prefetch_flush_bytes(self) -> tuple:
        """(cold, wire) bytes of one whole coalesced window flush."""
        staged, _share = self._prefetch_group_bytes()
        cold_total = sum(cold for cold, _remote in staged.values())
        wire_total = sum(remote for _cold, remote in staged.values()) * 2.0
        return cold_total, wire_total

    def _emit_prefetch_stream(self, graph: Graph, index: int,
                              io_op: Op) -> dict:
        """Background prefetch ops for iteration ``index``.

        Ops depend on this iteration's I/O (IDs must be known) and on
        the same group's previous stream op (per-group in-order
        queues; the DMA and NIC engines work different groups
        concurrently) but NOT on the previous step's tail — that
        independence is what lets the staged fetch run under iteration
        ``index - 1``'s compute.  Iteration 0 is warm-up: nothing
        earlier to hide under, so the stream starts at iteration 1
        (Hotline's first-window discipline).  Returns
        ``{group.name: (op, share)}``.
        """
        if index < 1:
            return {}
        staged, share = self._prefetch_group_bytes()
        if not staged:
            return {}
        plan = self.plan
        ops = {}
        for group in plan.groups:
            cold, remote = staged[group.name]
            op = Op(
                name=f"it{index}/prefetch/{group.name}",
                kind=OpKind.PREFETCH,
                phases=self._prefetch_phases(cold, remote,
                                             group.is_packed),
                micro_ops=4,
                tags={"layer": "prefetch", "group": group.name})
            graph.add(op)
            graph.add_edge(io_op, op)
            prev = self._prev_prefetch.get(group.name)
            if prev is not None:
                graph.add_edge(prev, op)
            self._prev_prefetch[group.name] = op
            ops[group.name] = (op, share)
        return ops

    def _build_forward_backward(self, graph, index, slice_index, slices,
                                inner_mlp_slices, io_op, prev_tail,
                                prev_slice_ops, grad_outputs):
        """One data slice: embedding -> interaction -> MLP -> backward.

        Returns the join op after this slice's backward compute.
        """
        plan = self.plan
        batch = plan.batch_size / slices
        prefix = f"it{index}/s{slice_index}"

        group_exits = {}
        group_comm_ops = {}
        for group in plan.groups:
            entry, comm, exit_op = self._embedding_group_ops(
                graph, prefix, group, batch)
            graph.add_edge(io_op, entry)
            if prev_tail is not None:
                graph.add_edge(prev_tail, entry)
            key = ("emb", group.name)
            if key in prev_slice_ops:
                graph.add_edge(prev_slice_ops[key], entry)
            prev_slice_ops[key] = exit_op
            group_exits[group.name] = exit_op
            if comm is not None:
                group_comm_ops[group.name] = comm

        self._apply_interleave_order(graph, group_comm_ops)

        barrier = None
        if not plan.fine_grained_deps:
            barrier = Op(name=f"{prefix}/emb_barrier", kind=OpKind.CONCAT,
                         phases=[], micro_ops=2, tags={"layer": "embedding"})
            graph.add(barrier)
            for exit_op in group_exits.values():
                graph.add_edge(exit_op, barrier)

        module_outputs = []
        for module in plan.model.modules:
            op = self._interaction_op(graph, prefix, module, batch)
            module_outputs.append(op)
            if barrier is not None:
                graph.add_edge(barrier, op)
            else:
                for group in self._module_groups(module):
                    graph.add_edge(group_exits[group.name], op)
            # Pipeline order: slice s's module kernel follows slice
            # s-1's (stages stay in order, enabling genuine overlap of
            # compute with the earlier slices' collectives).
            key = ("mod", module.name)
            if key in prev_slice_ops:
                graph.add_edge(prev_slice_ops[key], op)
            prev_slice_ops[key] = op

        concat = Op(name=f"{prefix}/concat", kind=OpKind.CONCAT,
                    phases=[self._hbm_phase(
                        batch * plan.model.interaction_output_dim()
                        * _FLOAT_BYTES)],
                    micro_ops=max(2, len(module_outputs) // 4),
                    tags={"layer": "interaction"})
        graph.add(concat)
        for op in module_outputs:
            graph.add_edge(op, concat)

        mlp_tail = self._mlp_chain(graph, prefix, concat, batch,
                                   inner_mlp_slices)

        # Backward mirror: dense compute at backward_flops_factor x,
        # then per-group embedding gradients.
        bwd = Op(name=f"{prefix}/backward",
                 kind=OpKind.GRAD,
                 phases=self._dense_backward_phases(batch),
                 micro_ops=self._dense_backward_micro(),
                 tags={"layer": "backward"})
        graph.add(bwd)
        graph.add_edge(mlp_tail, bwd)
        if ("bwd",) in prev_slice_ops:
            graph.add_edge(prev_slice_ops[("bwd",)], bwd)
        prev_slice_ops[("bwd",)] = bwd

        join = Op(name=f"{prefix}/slice_join", kind=OpKind.CONTROL,
                  phases=[], micro_ops=0, tags={"layer": "control"})
        graph.add(join)
        graph.add_edge(bwd, join)

        for group in plan.groups:
            ops = self._embedding_backward_ops(graph, prefix, group, batch)
            graph.add_edge(bwd, ops[0])
            graph.add_edge(ops[-1], join)
            grad_outputs.append((group, ops[-1], batch))
        return join

    # -- embedding layer ----------------------------------------------------

    def _embedding_group_ops(self, graph, prefix, group, batch):
        """Forward ops of one embedding group.

        Returns ``(entry, comm_op_or_None, exit)``.
        """
        plan = self.plan
        cost = plan.cost
        ids = group.ids_per_batch(int(batch)) or 1.0
        unique = max(1.0, self.stats.group_unique_ids(group, int(batch)))
        dim = group.embedding_dim
        id_bytes = ids * _ID_BYTES
        emb_bytes = unique * dim * _FLOAT_BYTES
        seq_factor = group.max_seq_factor
        field_count = 1 if group.is_packed else len(group.fields)
        tags = {"layer": "embedding", "group": group.name}

        def micro(kind):
            return int(EMB_MICRO_OPS[kind] * seq_factor * field_count)

        ops = []
        if plan.fuse_kernels:
            fused_micro = int((micro(OpKind.UNIQUE)
                               + micro(OpKind.PARTITION))
                              * FUSION_MICRO_FACTOR)
            unique_op = Op(
                name=f"{prefix}/{group.name}/unique_partition",
                kind=OpKind.UNIQUE_PARTITION,
                phases=[self._hbm_phase(id_bytes * cost.hash_probe_factor)],
                micro_ops=max(1, fused_micro), tags=tags)
            ops.append(graph.add(unique_op))
        else:
            unique_op = Op(
                name=f"{prefix}/{group.name}/unique",
                kind=OpKind.UNIQUE,
                phases=[self._hbm_phase(id_bytes * cost.hash_probe_factor)],
                micro_ops=micro(OpKind.UNIQUE), tags=tags)
            partition_op = Op(
                name=f"{prefix}/{group.name}/partition",
                kind=OpKind.PARTITION,
                phases=[self._hbm_phase(id_bytes * 2.0)],
                micro_ops=micro(OpKind.PARTITION), tags=tags)
            graph.add(unique_op)
            graph.add(partition_op)
            graph.add_edge(unique_op, partition_op)
            ops.extend([unique_op, partition_op])

        # Rows the background stream already staged (hot/cold
        # lookahead): the synchronous gather and exchange shrink by the
        # staged share, and gate on the stream op that staged them.
        prefetched = self._iter_prefetch.get(group.name)
        sync_scale = 1.0 - prefetched[1] if prefetched is not None else 1.0

        gather_op = None
        if plan.strategy not in ("ps-async", "ps-sync"):
            # PS workers hold no table shard: the server performs the
            # gather, whose cost rides on the pull below.
            gather_op = Op(
                name=f"{prefix}/{group.name}/gather",
                kind=OpKind.GATHER,
                phases=self._gather_phases(emb_bytes, group.is_packed,
                                           cold_scale=sync_scale),
                micro_ops=micro(OpKind.GATHER), tags=tags)
            graph.add(gather_op)
            graph.add_edge(ops[-1], gather_op)
            if prefetched is not None:
                graph.add_edge(prefetched[0], gather_op)
            ops.append(gather_op)

        comm_op = None
        if plan.uses_alltoall and self._workers > 1:
            remote_bytes = emb_bytes * (self._workers - 1) / self._workers
            remote_bytes *= plan.exchange_factor() * sync_scale
            if plan.fuse_kernels:
                comm_op = Op(
                    name=f"{prefix}/{group.name}/shuffle_stitch",
                    kind=OpKind.SHUFFLE_STITCH,
                    phases=self._shuffle_phases(remote_bytes,
                                                stitch_bytes=emb_bytes),
                    micro_ops=max(1, int((micro(OpKind.SHUFFLE)
                                          + micro(OpKind.STITCH))
                                         * FUSION_MICRO_FACTOR)),
                    tags=tags)
                graph.add(comm_op)
                graph.add_edge(gather_op, comm_op)
                ops.append(comm_op)
            else:
                shuffle_op = Op(
                    name=f"{prefix}/{group.name}/shuffle",
                    kind=OpKind.SHUFFLE,
                    phases=self._shuffle_phases(remote_bytes),
                    micro_ops=micro(OpKind.SHUFFLE), tags=tags)
                stitch_op = Op(
                    name=f"{prefix}/{group.name}/stitch",
                    kind=OpKind.STITCH,
                    phases=[self._hbm_phase(emb_bytes * 2.0)],
                    micro_ops=micro(OpKind.STITCH), tags=tags)
                graph.add(shuffle_op)
                graph.add(stitch_op)
                graph.add_edge(gather_op, shuffle_op)
                graph.add_edge(shuffle_op, stitch_op)
                comm_op = shuffle_op
                ops.extend([shuffle_op, stitch_op])
        elif plan.strategy in ("ps-async", "ps-sync"):
            pull_bytes = emb_bytes * plan.cost.straggler_factor
            pull_op = Op(
                name=f"{prefix}/{group.name}/ps_pull",
                kind=OpKind.PS_PULL,
                phases=[
                    Phase(ResourceKind.NET, pull_bytes,
                          max_rate=min(self._net_rate(pull_bytes),
                                       plan.ps_serving_rate)),
                    Phase(ResourceKind.PCIE, emb_bytes,
                          max_rate=self._bw_rate(ResourceKind.PCIE,
                                                 emb_bytes)),
                ],
                micro_ops=micro(OpKind.SHUFFLE), tags=tags)
            graph.add(pull_op)
            graph.add_edge(ops[-1], pull_op)
            comm_op = pull_op
            ops.append(pull_op)

        # Only the host-resident (cold) slice of the stitched feature
        # map streams over PCIe; hot rows and GPUDirect shuffle output
        # are already device-resident.
        cold_fraction = 1.0 - (plan.cache_hit_ratio or 0.0)
        feature_map_bytes = batch * sum(
            spec.embedding_dim for spec in group.fields) * _FLOAT_BYTES \
            * group.shard_fraction * cold_fraction * 0.5
        h2d_op = Op(
            name=f"{prefix}/{group.name}/h2d",
            kind=OpKind.H2D,
            phases=[Phase(ResourceKind.PCIE, max(feature_map_bytes, 1.0),
                          max_rate=self._bw_rate(ResourceKind.PCIE,
                                                 feature_map_bytes))],
            micro_ops=2, tags=tags)
        graph.add(h2d_op)
        graph.add_edge(ops[-1], h2d_op)
        ops.append(h2d_op)

        if any(spec.seq_length > 1 for spec in group.fields):
            pooled_ids = group.ids_per_batch(int(batch))
            reduce_op = Op(
                name=f"{prefix}/{group.name}/segment_reduce",
                kind=OpKind.SEGMENT_REDUCE,
                phases=[
                    self._hbm_phase(pooled_ids * dim * _FLOAT_BYTES),
                    self._sm_phase(pooled_ids * dim),
                ],
                micro_ops=micro(OpKind.SEGMENT_REDUCE), tags=tags)
            graph.add(reduce_op)
            graph.add_edge(ops[-1], reduce_op)
            ops.append(reduce_op)

        return ops[0], comm_op, ops[-1]

    def _embedding_backward_ops(self, graph, prefix, group, batch):
        """Gradient scatter + (strategy-specific) comm + sparse update."""
        plan = self.plan
        unique = max(1.0, self.stats.group_unique_ids(group, int(batch)))
        dim = group.embedding_dim
        emb_bytes = unique * dim * _FLOAT_BYTES
        seq_factor = group.max_seq_factor
        field_count = 1 if group.is_packed else len(group.fields)
        tags = {"layer": "emb_backward", "group": group.name}

        def micro(kind):
            return int(EMB_MICRO_OPS[kind] * seq_factor * field_count)

        grad_op = Op(
            name=f"{prefix}/{group.name}/emb_grad",
            kind=OpKind.EMB_GRAD,
            phases=[self._hbm_phase(emb_bytes * 2.0)],
            micro_ops=micro(OpKind.EMB_GRAD), tags=tags)
        graph.add(grad_op)
        ops = [grad_op]

        # Gradients for rows the stream staged are pushed back on the
        # stream too (deferred, coalesced — priced in the prefetch
        # op's wire phase), so only the hot share exchanges here.
        prefetched = self._iter_prefetch.get(group.name)
        sync_scale = 1.0 - prefetched[1] if prefetched is not None else 1.0

        if plan.uses_alltoall and self._workers > 1:
            remote = emb_bytes * (self._workers - 1) / self._workers
            remote *= plan.exchange_factor() * sync_scale
            back_op = Op(
                name=f"{prefix}/{group.name}/grad_shuffle",
                kind=OpKind.ALLTOALL,
                phases=self._shuffle_phases(remote),
                micro_ops=max(1, int(micro(OpKind.SHUFFLE) * 0.7)),
                tags=tags)
            graph.add(back_op)
            graph.add_edge(grad_op, back_op)
            ops.append(back_op)
        elif plan.strategy in ("ps-async", "ps-sync"):
            push_bytes = emb_bytes * plan.cost.straggler_factor
            push_op = Op(
                name=f"{prefix}/{group.name}/ps_push",
                kind=OpKind.PS_PUSH,
                phases=[
                    Phase(ResourceKind.PCIE, emb_bytes,
                          max_rate=self._bw_rate(ResourceKind.PCIE,
                                                 emb_bytes)),
                    Phase(ResourceKind.NET, push_bytes,
                          max_rate=min(self._net_rate(push_bytes),
                                       plan.ps_serving_rate)),
                ],
                micro_ops=max(1, int(micro(OpKind.SHUFFLE) * 0.7)),
                tags=tags)
            graph.add(push_op)
            graph.add_edge(grad_op, push_op)
            ops.append(push_op)
        elif plan.strategy == "dp" and self._workers > 1:
            reduce_bytes = (2.0 * emb_bytes * (self._workers - 1)
                            / self._workers * plan.cost.straggler_factor)
            reduce_op = Op(
                name=f"{prefix}/{group.name}/grad_allreduce",
                kind=OpKind.ALLREDUCE,
                phases=self._shuffle_phases(reduce_bytes),
                micro_ops=max(1, int(micro(OpKind.SHUFFLE) * 0.7)),
                tags=tags)
            graph.add(reduce_op)
            graph.add_edge(grad_op, reduce_op)
            ops.append(reduce_op)
        return ops

    # -- dense layers ---------------------------------------------------

    def _interaction_op(self, graph, prefix, module, batch) -> Op:
        plan = self.plan
        fields = plan.model.field_specs(module)
        flops = interaction_flops_per_instance(module, fields) * batch
        flops *= module.repeats
        base_micro = MODULE_MICRO_OPS[module.kind]
        seq = max((spec.seq_length for spec in fields), default=1)
        seq_scale = 1.0 + seq / 8.0
        if module.kind in (InteractionKind.CONCAT, InteractionKind.LINEAR):
            micro = base_micro * len(fields)
        elif module.kind in (InteractionKind.EXPERT, InteractionKind.GATE,
                             InteractionKind.TOWER,
                             InteractionKind.STAR_FCN):
            micro = base_micro * max(1, len(fields) // 2)
        else:
            micro = int(base_micro * seq_scale)
        if plan.fuse_kernels:
            # K-Packing fuses the module's repeated instances into one
            # batched kernel.
            micro = max(1, int(micro * FUSION_MICRO_FACTOR))
        else:
            micro *= module.repeats
        op = Op(
            name=f"{prefix}/mod/{module.name}",
            kind=OpKind.INTERACTION,
            phases=[self._sm_phase(
                flops, fused=plan.fuse_kernels or module.repeats == 1)],
            micro_ops=micro,
            tags={"layer": "interaction", "module": module.name})
        return graph.add(op)

    def _mlp_chain(self, graph, prefix, concat, batch, inner_slices) -> Op:
        plan = self.plan
        widths = [plan.model.interaction_output_dim(),
                  *plan.model.mlp_layers, plan.model.num_tasks]
        prev_by_slice = [concat] * inner_slices
        last_ops = []
        for layer, (w_in, w_out) in enumerate(
                zip(widths[:-1], widths[1:])):
            for inner in range(inner_slices):
                flops = 2.0 * (batch / inner_slices) * w_in * w_out
                op = Op(
                    name=f"{prefix}/mlp{layer}/m{inner}",
                    kind=OpKind.MLP,
                    phases=[self._sm_phase(flops)],
                    micro_ops=10,
                    tags={"layer": "mlp"})
                graph.add(op)
                graph.add_edge(prev_by_slice[inner], op)
                if inner > 0:
                    # Keep micro-batches ordered within a layer so the
                    # pipeline stays load-balanced.
                    graph.add_edge(graph.op(f"{prefix}/mlp{layer}"
                                            f"/m{inner - 1}"), op)
                prev_by_slice[inner] = op
            last_ops = list(prev_by_slice)
        loss = Op(name=f"{prefix}/loss", kind=OpKind.LOSS,
                  phases=[self._sm_phase(batch * 16.0)],
                  micro_ops=8, tags={"layer": "mlp"})
        graph.add(loss)
        for op in last_ops:
            graph.add_edge(op, loss)
        return loss

    def _dense_backward_phases(self, batch) -> list:
        plan = self.plan
        model = plan.model
        widths = [model.interaction_output_dim(), *model.mlp_layers,
                  model.num_tasks]
        mlp_flops = sum(2.0 * batch * w_in * w_out
                        for w_in, w_out in zip(widths[:-1], widths[1:]))
        interaction_flops = sum(
            interaction_flops_per_instance(module,
                                           model.field_specs(module))
            * batch * module.repeats
            for module in model.modules)
        total = (mlp_flops + interaction_flops) \
            * plan.cost.backward_flops_factor
        return [self._sm_phase(total, fused=plan.fuse_kernels)]

    def _dense_backward_micro(self) -> int:
        plan = self.plan
        model = plan.model
        micro = 10 * (len(model.mlp_layers) + 1)
        for module in model.modules:
            base = MODULE_MICRO_OPS[module.kind]
            repeats = 1 if plan.fuse_kernels else module.repeats
            micro += int(base * repeats * 0.8)
        if plan.fuse_kernels:
            micro = max(1, int(micro * FUSION_MICRO_FACTOR))
        return micro

    def _optimizer_and_comm(self, graph, index, grad_outputs,
                            slice_joins) -> list:
        """Dense gradient collective + optimizer updates (per iteration)."""
        plan = self.plan
        cost = plan.cost
        dense_params = plan.model.dense_parameters()
        dense_bytes = dense_params * _FLOAT_BYTES
        tail_ops = []

        comm_dep = slice_joins[-1] if slice_joins else None
        if plan.strategy in ("dp", "hybrid", "mp") and self._workers > 1:
            # Gradient-bucket overlap: with D-Interleaving each slice's
            # dense gradients reduce as soon as that slice's backward
            # finishes, hiding the collective under later slices'
            # compute.  Without micro-batching this degenerates to one
            # barrier allreduce, as in the unoptimized baselines.
            reduce_bytes = (2.0 * dense_bytes * (self._workers - 1)
                            / self._workers * cost.straggler_factor)
            chunk = reduce_bytes / max(1, len(slice_joins))
            previous = None
            for rank, join in enumerate(slice_joins):
                allreduce = Op(
                    name=f"it{index}/dense_allreduce{rank}",
                    kind=OpKind.ALLREDUCE,
                    phases=self._shuffle_phases(chunk),
                    micro_ops=12,
                    tags={"layer": "dense_comm"})
                graph.add(allreduce)
                graph.add_edge(join, allreduce)
                if previous is not None:
                    graph.add_edge(previous, allreduce)
                previous = allreduce
            comm_dep = previous
            tail_ops.append(previous)
        elif plan.strategy in ("ps-async", "ps-sync"):
            pull_bytes = dense_bytes * plan.cost.straggler_factor
            dense_ps = Op(
                name=f"it{index}/dense_ps_sync",
                kind=OpKind.PS_PULL,
                phases=[Phase(ResourceKind.NET, 2.0 * pull_bytes,
                              max_rate=self._net_rate(pull_bytes)
                              * plan.ps_bandwidth_factor)],
                micro_ops=16,
                tags={"layer": "dense_comm"})
            graph.add(dense_ps)
            for join in slice_joins:
                graph.add_edge(join, dense_ps)
            comm_dep = dense_ps
            tail_ops.append(dense_ps)

        opt_dense = Op(
            name=f"it{index}/opt_dense",
            kind=OpKind.OPT_DENSE,
            phases=[self._hbm_phase(
                dense_bytes * plan.cost.optimizer_slots)],
            micro_ops=8,
            tags={"layer": "optimizer"})
        graph.add(opt_dense)
        if comm_dep is not None:
            graph.add_edge(comm_dep, opt_dense)
        tail_ops.append(opt_dense)

        for group, last_op, batch in grad_outputs:
            unique = max(1.0, self.stats.group_unique_ids(group, int(batch)))
            update_bytes = (unique * group.embedding_dim * _FLOAT_BYTES
                            * cost.optimizer_slots)
            seq_factor = group.max_seq_factor
            field_count = 1 if group.is_packed else len(group.fields)
            prefetched = self._iter_prefetch.get(group.name)
            opt_scale = 1.0 - prefetched[1] if prefetched is not None \
                else 1.0
            opt_op = Op(
                name=f"it{index}/opt/{group.name}/"
                     f"{last_op.name.split('/')[1]}",
                kind=OpKind.OPT_SPARSE,
                phases=self._sparse_update_phases(update_bytes,
                                                  group.is_packed,
                                                  cold_scale=opt_scale),
                micro_ops=int(EMB_MICRO_OPS[OpKind.OPT_SPARSE]
                              * seq_factor * field_count),
                tags={"layer": "optimizer", "group": group.name})
            graph.add(opt_op)
            graph.add_edge(last_op, opt_op)
            if not plan.is_async:
                tail_ops.append(opt_op)
        return tail_ops

    # -- interleaving ---------------------------------------------------

    def _apply_interleave_order(self, graph, group_comm_ops) -> None:
        """Serialize communication across K-Interleaving sets.

        Within a set, comm ops race (that is the set's capacity); the
        next set's comm waits for the previous set's, freeing the
        network for one set at a time while other sets compute.
        """
        plan = self.plan
        if plan.interleave_sets <= 1 or not group_comm_ops:
            return
        sets: dict = {}
        for group in plan.groups:
            comm = group_comm_ops.get(group.name)
            if comm is None or group.excluded:
                continue
            sets.setdefault(group.interleave_set, []).append(comm)
        ordered = sorted(sets)
        for prev_key, next_key in zip(ordered[:-1], ordered[1:]):
            for prev_op in sets[prev_key]:
                for next_op in sets[next_key]:
                    graph.add_edge(prev_op, next_op)

    def _module_groups(self, module) -> list:
        groups = []
        seen = set()
        for name in module.fields:
            group = self._field_to_group[name]
            if group.name not in seen:
                seen.add(group.name)
                groups.append(group)
        return groups

    # -- phase helpers ----------------------------------------------------

    def _sm_phase(self, flops: float, fused: bool = True) -> Phase:
        cost = self.plan.cost
        capacity = self._node.gpu.fp32_flops
        saturation = cost.sm_saturation_flops
        if not fused:
            # Unfused repeated modules issue many small kernels; their
            # effective occupancy is that of one instance.
            saturation = saturation * 4.0
        return Phase(ResourceKind.GPU_SM, max(flops, 1.0),
                     max_rate=efficiency_capped_rate(
                         capacity, flops, saturation))

    def _hbm_phase(self, bytes_: float) -> Phase:
        return Phase(ResourceKind.HBM, max(bytes_, 1.0),
                     max_rate=self._bw_rate(ResourceKind.HBM, bytes_))

    def _bw_rate(self, kind: ResourceKind, bytes_: float) -> float:
        cost = self.plan.cost
        capacities = {
            ResourceKind.HBM: self._node.gpu.hbm_bandwidth,
            ResourceKind.DRAM: self._node.dram.bandwidth
            / max(1, self._node.gpus_per_node),
            ResourceKind.PCIE: self._node.pcie.bandwidth,
        }
        return efficiency_capped_rate(capacities[kind], bytes_,
                                      cost.bw_saturation_bytes)

    def _net_rate(self, bytes_: float) -> float:
        cost = self.plan.cost
        capacity = self._node.network.bandwidth \
            / max(1, self._node.gpus_per_node)
        rate = efficiency_capped_rate(capacity, bytes_,
                                      cost.net_saturation_bytes)
        return min(rate, self.plan.net_stack_rate)

    def _nvlink_rate(self, bytes_: float) -> float:
        cost = self.plan.cost
        link = self._node.nvlink
        if link is None:
            return 1.0
        return efficiency_capped_rate(link.bandwidth, bytes_,
                                      cost.bw_saturation_bytes)

    def _scatter_amplification(self, packed: bool) -> float:
        """Work multiplier for scattered embedding-row traffic."""
        cost = self.plan.cost
        return (cost.packed_scatter_amplification if packed
                else cost.scatter_amplification)

    def _gather_phases(self, emb_bytes: float, packed: bool,
                       cold_scale: float = 1.0) -> list:
        """Local embedding fetch: cache-split between HBM and DRAM+PCIe.

        ``cold_scale`` shrinks the cold (DRAM+PCIe) slice by whatever
        fraction the background prefetch stream already staged; hot
        HBM traffic is unaffected (those rows were resident anyway).
        """
        plan = self.plan
        # Symmetric MP serving: this worker's shard answers every
        # worker's requests, so per-step gather volume equals one full
        # batch's unique rows regardless of the worker count.
        local_bytes = emb_bytes
        hit = plan.cache_hit_ratio or 0.0
        hot_bytes = local_bytes * hit
        cold_bytes = local_bytes * (1.0 - hit) * cold_scale
        phases = []
        if hot_bytes > 0:
            phases.append(self._hbm_phase(hot_bytes))
        if cold_bytes > 0:
            amp = self._scatter_amplification(packed)
            probe = cold_bytes * plan.cost.hash_probe_factor
            phases.append(Phase(
                ResourceKind.DRAM, probe * amp,
                max_rate=self._bw_rate(ResourceKind.DRAM, probe)))
            phases.append(Phase(
                ResourceKind.PCIE, cold_bytes * amp,
                max_rate=self._bw_rate(ResourceKind.PCIE, cold_bytes)))
        return phases or [self._hbm_phase(1.0)]

    def _shuffle_phases(self, remote_bytes: float,
                        stitch_bytes: float = 0.0) -> list:
        """AllToAllv / Allreduce traffic split across NVLink and NIC."""
        node = self._node
        workers = self._workers
        phases = []
        if workers > 1 and node.has_nvlink:
            peers_intra = node.gpus_per_node - 1
            intra_fraction = peers_intra / (workers - 1)
            intra = remote_bytes * intra_fraction
            inter = remote_bytes - intra
            if intra > 0:
                phases.append(Phase(ResourceKind.NVLINK, intra,
                                    max_rate=self._nvlink_rate(intra)))
            if inter > 0:
                phases.append(Phase(ResourceKind.NET, inter,
                                    max_rate=self._net_rate(inter)))
        elif remote_bytes > 0:
            phases.append(Phase(ResourceKind.NET, remote_bytes,
                                max_rate=self._net_rate(remote_bytes)))
        if stitch_bytes > 0:
            phases.append(self._hbm_phase(stitch_bytes))
        return phases or [self._hbm_phase(1.0)]

    def planned_prefetch_seconds(self, iterations: int) -> float:
        """Solo seconds of the whole background prefetch stream.

        Prices the per-iteration staged window at each phase's
        uncontended rate and sums across the ``iterations - 1``
        covered steps — the analytic credit the what-if replayer uses
        for candidates that enable the stream (work moved off the
        synchronous path is work the replayed trace no longer
        exposes).
        """
        staged, _share = self._prefetch_group_bytes()
        if not staged or iterations <= 1:
            return 0.0
        per_iteration = 0.0
        for group in self.plan.groups:
            cold, remote = staged[group.name]
            for phase in self._prefetch_phases(cold, remote,
                                               group.is_packed):
                per_iteration += phase.work / phase.max_rate
        return per_iteration * (iterations - 1)

    def _sparse_update_phases(self, update_bytes: float,
                              packed: bool,
                              cold_scale: float = 1.0) -> list:
        """Optimizer writes: hot part on HBM, the rest behind PCIe+DRAM.

        ``cold_scale`` shrinks the scattered host-side write slice by
        the share the prefetch stream staged: staged rows are
        device-resident for the window, so their updates land on the
        HBM copy and write back lazily on the stream (one coalesced
        flush, priced in the prefetch op) instead of scattering over
        PCIe every step.
        """
        hit = self.plan.cache_hit_ratio or 0.0
        phases = []
        cold = update_bytes * (1.0 - hit)
        hot = update_bytes * hit + cold * (1.0 - cold_scale)
        cold *= cold_scale
        if hot > 0:
            phases.append(self._hbm_phase(hot))
        if cold > 0:
            amp = self._scatter_amplification(packed)
            phases.append(Phase(
                ResourceKind.PCIE, cold * amp,
                max_rate=self._bw_rate(ResourceKind.PCIE, cold)))
            phases.append(Phase(
                ResourceKind.DRAM, cold * amp,
                max_rate=self._bw_rate(ResourceKind.DRAM, cold)))
        return phases or [self._hbm_phase(1.0)]
