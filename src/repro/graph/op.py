"""Operators: nodes of the per-iteration computation graph.

An :class:`Op` is a *logical* operator carrying (a) the hardware work
phases the simulator executes and (b) ``micro_ops``, the number of
framework-level operations it expands to in a TF-style runtime.  The
launch queue charges per micro-op, which is how fragmentary graphs
become launch-bound, and Tab. V's operation counts are
``sum(op.micro_ops)`` over a graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.resource import ResourceKind


class OpKind:
    """Operator kinds, grouped by the resource class that dominates them.

    Plain string constants (not an Enum) so builders can derive variants
    cheaply; grouping sets below drive K-Packing's rule of only fusing
    kernels within one resource class.
    """

    IO_READ = "io_read"
    UNIQUE = "unique"
    PARTITION = "partition"
    UNIQUE_PARTITION = "unique_partition"  # K-packed fusion
    GATHER = "gather"
    SHUFFLE = "shuffle"
    STITCH = "stitch"
    SHUFFLE_STITCH = "shuffle_stitch"  # K-packed fusion
    SEGMENT_REDUCE = "segment_reduce"
    H2D = "h2d"
    D2H = "d2h"
    INTERACTION = "interaction"
    CONCAT = "concat"
    MLP = "mlp"
    LOSS = "loss"
    GRAD = "grad"  # generic backward mirror
    EMB_GRAD = "emb_grad"  # embedding gradient scatter
    ALLREDUCE = "allreduce"
    ALLTOALL = "alltoall"
    PS_PULL = "ps_pull"
    PS_PUSH = "ps_push"
    OPT_SPARSE = "opt_sparse"
    OPT_DENSE = "opt_dense"
    PREFETCH = "prefetch"  # background hot/cold lookahead stream
    CONTROL = "control"


#: Kernel groups for K-Packing: only ops within one group may fuse.
MEMORY_GROUP = frozenset({
    OpKind.UNIQUE, OpKind.PARTITION, OpKind.UNIQUE_PARTITION, OpKind.GATHER,
    OpKind.STITCH, OpKind.SEGMENT_REDUCE, OpKind.H2D, OpKind.D2H,
    OpKind.EMB_GRAD, OpKind.OPT_SPARSE,
})
COMMUNICATION_GROUP = frozenset({
    OpKind.SHUFFLE, OpKind.SHUFFLE_STITCH, OpKind.ALLREDUCE, OpKind.ALLTOALL,
    OpKind.PS_PULL, OpKind.PS_PUSH, OpKind.IO_READ, OpKind.PREFETCH,
})
COMPUTE_GROUP = frozenset({
    OpKind.INTERACTION, OpKind.MLP, OpKind.LOSS, OpKind.GRAD, OpKind.CONCAT,
    OpKind.OPT_DENSE,
})


def kernel_group(kind: str) -> str:
    """The K-Packing kernel group of an op kind."""
    if kind in MEMORY_GROUP:
        return "memory"
    if kind in COMMUNICATION_GROUP:
        return "communication"
    if kind in COMPUTE_GROUP:
        return "compute"
    return "control"


def efficiency_capped_rate(capacity: float, work: float,
                           saturation_work: float) -> float:
    """Peak rate a single kernel of a given size can sustain.

    Small kernels cannot fill a device: a kernel with ``work`` far below
    ``saturation_work`` only reaches a proportional fraction of
    ``capacity``.  This is the occupancy model behind the paper's low
    SM-utilization observation for fragmentary WDL graphs.
    """
    if work <= 0:
        return capacity
    fraction = min(1.0, work / max(saturation_work, 1e-9))
    # Never let a kernel drop below 8% of peak: even small kernels and
    # messages make pipelined forward progress.
    return capacity * max(0.08, fraction)


@dataclass
class Op:
    """A logical operator.

    :param phases: hardware demands executed in order by the simulator.
    :param micro_ops: framework operations this logical op expands to;
        drives launch cost and Tab. V counts.
    :param tags: metadata (``layer``, ``group``, ``module``, ...).
    """

    name: str
    kind: str
    phases: list
    micro_ops: int = 1
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.micro_ops < 0:
            raise ValueError(f"micro_ops must be >= 0, got {self.micro_ops}")

    @property
    def group(self) -> str:
        """K-Packing kernel group of this op."""
        return kernel_group(self.kind)

    def total_work(self, kind: ResourceKind) -> float:
        """Summed phase work on one resource kind."""
        return sum(phase.work for phase in self.phases
                   if phase.kind is kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name!r}, kind={self.kind}, micro={self.micro_ops})"
