"""The operator DAG container and its compilation to simulator tasks."""

from __future__ import annotations

from collections import deque

from repro.graph.op import Op
from repro.sim.engine import SimTask
from repro.sim.resource import Phase, ResourceKind


class Graph:
    """A DAG of :class:`~repro.graph.op.Op` nodes.

    Edges express control/data dependencies.  The graph validates
    acyclicity on demand and compiles to :class:`~repro.sim.engine.SimTask`
    lists for execution.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.ops: list = []
        self._succs: dict = {}
        self._preds: dict = {}
        self._by_name: dict = {}

    def add(self, op: Op) -> Op:
        """Insert an op; names must be unique within the graph."""
        if op.name in self._by_name:
            raise ValueError(f"duplicate op name: {op.name}")
        self.ops.append(op)
        self._by_name[op.name] = op
        self._succs[op.name] = []
        self._preds[op.name] = []
        return op

    def add_edge(self, before: Op, after: Op) -> None:
        """Declare that ``after`` must wait for ``before``."""
        if before.name not in self._by_name or after.name not in self._by_name:
            raise KeyError("both ops must be added before linking")
        if before is after:
            raise ValueError(f"self-edge on {before.name}")
        self._succs[before.name].append(after.name)
        self._preds[after.name].append(before.name)

    def op(self, name: str) -> Op:
        """Look up an op by name."""
        return self._by_name[name]

    def successors(self, op: Op) -> list:
        """Ops depending on ``op``."""
        return [self._by_name[name] for name in self._succs[op.name]]

    def predecessors(self, op: Op) -> list:
        """Ops ``op`` depends on."""
        return [self._by_name[name] for name in self._preds[op.name]]

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def total_micro_ops(self) -> int:
        """Framework-level operation count (Tab. V's metric)."""
        return sum(op.micro_ops for op in self.ops)

    def ops_with_tag(self, key: str, value=None) -> list:
        """Ops carrying a tag (optionally with a specific value)."""
        if value is None:
            return [op for op in self.ops if key in op.tags]
        return [op for op in self.ops if op.tags.get(key) == value]

    def topological_order(self) -> list:
        """Kahn topological order; raises on cycles."""
        indegree = {op.name: len(self._preds[op.name]) for op in self.ops}
        queue = deque(name for name, degree in indegree.items()
                      if degree == 0)
        order = []
        while queue:
            name = queue.popleft()
            order.append(self._by_name[name])
            for succ in self._succs[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self.ops):
            raise ValueError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Raise :class:`ValueError` if the graph is cyclic."""
        self.topological_order()

    def to_sim_tasks(self, launch_seconds_per_micro_op: float,
                     launch_floor: float = 0.0) -> list:
        """Compile to simulator tasks.

        Each op gets a leading ``LAUNCH`` phase of
        ``micro_ops * launch_seconds_per_micro_op`` (plus ``launch_floor``
        per logical op), then its hardware phases.  Dependency edges are
        translated one-to-one.
        """
        if launch_seconds_per_micro_op < 0:
            raise ValueError("launch cost must be >= 0")
        tasks = {}
        for op in self.ops:
            phases = []
            launch = (op.micro_ops * launch_seconds_per_micro_op
                      + launch_floor)
            if launch > 0:
                # One op's dispatch occupies a single executor thread
                # (rate 1.0); parallelism only helps across ops.
                phases.append(Phase(ResourceKind.LAUNCH, launch,
                                    max_rate=1.0))
            phases.extend(op.phases)
            tasks[op.name] = SimTask(op.name, phases, tags=op.tags)
        for op in self.ops:
            task = tasks[op.name]
            for pred in self._preds[op.name]:
                task.depends_on(tasks[pred])
        return [tasks[op.name] for op in self.ops]
