"""Static analysis of operator graphs: critical path and bottlenecks.

Before simulating, a plan can be screened analytically:

* :func:`resource_work_summary` — total demanded work per resource,
  i.e. the lower bound each resource alone imposes on iteration time;
* :func:`dominant_resource` — which resource binds (the paper's SS II-D
  "the training would be bounded by one type of hardware resource");
* :func:`critical_path_seconds` — the dependency-chain lower bound,
  which no amount of extra hardware removes.

The achievable iteration time is at least
``max(critical_path, max_over_resources(work / capacity))``.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.op import Op
from repro.sim.resource import ResourceKind


def op_duration_lower_bound(op: Op, capacities: dict,
                            launch_seconds_per_micro_op: float) -> float:
    """Fastest possible execution of one op, alone on the machine."""
    total = op.micro_ops * launch_seconds_per_micro_op
    for phase in op.phases:
        capacity = capacities.get(phase.kind)
        if capacity is None or capacity <= 0:
            continue
        rate = min(capacity, phase.max_rate)
        total += phase.work / rate
    return total


def resource_work_summary(graph: Graph, capacities: dict) -> dict:
    """Per-resource total work and the serial seconds it implies.

    Returns ``{kind: {"work": units, "seconds": work/capacity}}`` —
    the time each resource would need even with perfect overlap of
    everything else.
    """
    totals = {kind: 0.0 for kind in capacities}
    for op in graph.ops:
        for phase in op.phases:
            if phase.kind in totals:
                totals[phase.kind] += phase.work
    return {
        kind: {
            "work": work,
            "seconds": work / capacities[kind]
            if capacities[kind] > 0 else 0.0,
        }
        for kind, work in totals.items()
    }


def dominant_resource(graph: Graph, capacities: dict,
                      launch_seconds_per_micro_op: float = 0.0) -> tuple:
    """(kind, seconds) of the binding resource for this graph.

    The launch path is included when a per-micro-op cost is given
    (``ResourceKind.LAUNCH``): fragmentary graphs commonly bind there.
    """
    summary = resource_work_summary(graph, capacities)
    if launch_seconds_per_micro_op > 0:
        launch_capacity = capacities.get(ResourceKind.LAUNCH, 1.0)
        seconds = (graph.total_micro_ops * launch_seconds_per_micro_op
                   / max(launch_capacity, 1e-12))
        summary.setdefault(ResourceKind.LAUNCH, {"work": 0.0,
                                                 "seconds": 0.0})
        summary[ResourceKind.LAUNCH]["seconds"] = max(
            summary[ResourceKind.LAUNCH]["seconds"], seconds)
    kind = max(summary, key=lambda item: summary[item]["seconds"])
    return kind, summary[kind]["seconds"]


def critical_path_seconds(graph: Graph, capacities: dict,
                          launch_seconds_per_micro_op: float = 0.0) -> float:
    """Longest dependency chain, in per-op lower-bound seconds."""
    longest: dict = {}
    best = 0.0
    for op in graph.topological_order():
        duration = op_duration_lower_bound(
            op, capacities, launch_seconds_per_micro_op)
        start = 0.0
        for predecessor in graph.predecessors(op):
            start = max(start, longest[predecessor.name])
        longest[op.name] = start + duration
        best = max(best, longest[op.name])
    return best


def iteration_time_lower_bound(graph: Graph, capacities: dict,
                               launch_seconds_per_micro_op: float = 0.0
                               ) -> float:
    """max(critical path, binding-resource serial time)."""
    _kind, resource_bound = dominant_resource(
        graph, capacities, launch_seconds_per_micro_op)
    chain_bound = critical_path_seconds(
        graph, capacities, launch_seconds_per_micro_op)
    return max(resource_bound, chain_bound)


def bottleneck_report(graph: Graph, capacities: dict,
                      launch_seconds_per_micro_op: float = 0.0) -> dict:
    """One-stop diagnostic: bounds + per-resource shares."""
    summary = resource_work_summary(graph, capacities)
    kind, bound = dominant_resource(graph, capacities,
                                    launch_seconds_per_micro_op)
    chain = critical_path_seconds(graph, capacities,
                                  launch_seconds_per_micro_op)
    return {
        "dominant_resource": kind.value,
        "resource_bound_seconds": bound,
        "critical_path_seconds": chain,
        "lower_bound_seconds": max(bound, chain),
        "per_resource_seconds": {
            k.value: round(v["seconds"], 6) for k, v in summary.items()
        },
    }
