"""Generic K-Packing rewrites over operator graphs.

The builder emits pre-fused graphs for the known embedding chains;
this module provides the *general* rewrite the paper describes
(SS III-B): fuse linear chains of operators that belong to the same
kernel group (memory / communication / compute), never across groups —
cross-group fusion would destroy the interleaving opportunities
K-Interleaving exploits.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.op import Op

#: Fused kernels keep roughly this share of their constituents'
#: framework micro-ops (matches the builder's hand-fused chains).
FUSED_MICRO_FACTOR = 0.6


def fusible_chains(graph: Graph) -> list:
    """Maximal linear same-group chains eligible for fusion.

    A chain is a path ``a -> b -> ...`` where every node has exactly
    one predecessor and successor inside the chain, all nodes share one
    kernel group, and no node is a control op.
    """
    chains = []
    visited = set()
    for op in graph.topological_order():
        if op.name in visited or op.group == "control":
            continue
        successors = graph.successors(op)
        # Chain heads: not a mid-chain continuation of the same group.
        predecessors = graph.predecessors(op)
        is_head = not (
            len(predecessors) == 1
            and predecessors[0].group == op.group
            and predecessors[0].group != "control"
            and len(graph.successors(predecessors[0])) == 1)
        if not is_head:
            continue
        chain = [op]
        current = op
        while True:
            successors = graph.successors(current)
            if len(successors) != 1:
                break
            nxt = successors[0]
            if (nxt.group != op.group or nxt.group == "control"
                    or len(graph.predecessors(nxt)) != 1):
                break
            chain.append(nxt)
            current = nxt
        if len(chain) >= 2:
            chains.append(chain)
            visited.update(node.name for node in chain)
    return chains


def fuse_chains(graph: Graph) -> Graph:
    """Return a new graph with every fusible chain collapsed.

    The fused op concatenates the chain's phases (sequential execution
    is preserved exactly) and discounts the summed micro-ops by
    :data:`FUSED_MICRO_FACTOR` (one launch envelope instead of many).
    """
    chains = fusible_chains(graph)
    member_of: dict = {}
    for chain in chains:
        head = chain[0].name
        for op in chain:
            member_of[op.name] = head
    heads = {chain[0].name: chain for chain in chains}

    fused = Graph(name=f"{graph.name}+fused")
    replacements: dict = {}
    for op in graph.ops:
        head = member_of.get(op.name)
        if head is None:
            clone = Op(name=op.name, kind=op.kind,
                       phases=list(op.phases), micro_ops=op.micro_ops,
                       tags=dict(op.tags))
            fused.add(clone)
            replacements[op.name] = clone
        elif op.name == head:
            chain = heads[head]
            phases = [phase for member in chain
                      for phase in member.phases]
            micro = max(1, int(sum(member.micro_ops for member in chain)
                               * FUSED_MICRO_FACTOR))
            clone = Op(name=f"fused:{head}", kind=chain[-1].kind,
                       phases=phases, micro_ops=micro,
                       tags=dict(chain[0].tags))
            fused.add(clone)
            for member in chain:
                replacements[member.name] = clone
        # Non-head chain members map to the head's clone (added above
        # once the head is reached in topological order).

    # Second pass guarantees members processed before their head still
    # resolve (heads are topologically first in their chain, so all
    # members already map).
    edges = set()
    for op in graph.ops:
        source = replacements[op.name]
        for successor in graph.successors(op):
            target = replacements[successor.name]
            if source is target:
                continue
            key = (source.name, target.name)
            if key not in edges:
                edges.add(key)
                fused.add_edge(source, target)
    return fused


def fusion_report(graph: Graph) -> dict:
    """Summary of what fusion would save on a graph (Tab. V style)."""
    fused = fuse_chains(graph)
    return {
        "ops_before": len(graph),
        "ops_after": len(fused),
        "micro_ops_before": graph.total_micro_ops,
        "micro_ops_after": fused.total_micro_ops,
        "chains": len(fusible_chains(graph)),
    }
