"""Computation graphs: the operator DAG a training iteration executes.

The operator vocabulary follows the paper's low-level projection
(Fig. 4): the embedding layer expands into Unique / Partition / Gather /
Shuffle / Stitch / SegmentReduction per feature field, the interaction
layer into per-module compute kernels, the MLP into per-layer kernels,
and the backward pass mirrors the forward.  PICASSO's packing rewrites
operate on these graphs.
"""

from repro.graph.op import Op, OpKind, efficiency_capped_rate
from repro.graph.graph import Graph
from repro.graph.fusion import fuse_chains, fusible_chains, fusion_report
from repro.graph.analysis import (
    bottleneck_report,
    critical_path_seconds,
    dominant_resource,
    iteration_time_lower_bound,
    resource_work_summary,
)
from repro.graph.builder import (
    CostModel,
    EmbeddingGroup,
    ExecutionPlan,
    IterationGraphBuilder,
    WorkloadStats,
    groups_per_field,
)

__all__ = [
    "Op",
    "OpKind",
    "efficiency_capped_rate",
    "Graph",
    "CostModel",
    "EmbeddingGroup",
    "ExecutionPlan",
    "IterationGraphBuilder",
    "WorkloadStats",
    "groups_per_field",
    "fuse_chains",
    "fusible_chains",
    "fusion_report",
    "bottleneck_report",
    "critical_path_seconds",
    "dominant_resource",
    "iteration_time_lower_bound",
    "resource_work_summary",
]
