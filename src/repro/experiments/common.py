"""Shared setup for all experiments: workloads, batch sizes, caches.

The paper's evaluation uses two testbeds (Tab. I): one Gn6e node
(8x V100, TCP) for the public benchmarks and 16 EFLOPS nodes (1x V100,
RDMA) for the system-design studies.  Batch sizes per framework follow
Tab. III; production model batch sizes follow Tab. VII's XDL column.
"""

from __future__ import annotations


from repro.api import RunConfig
from repro.api import run as run_config
from repro.core import PicassoConfig
from repro.core.executor import RunReport
from repro.data import alibaba, criteo, product1, product2, product3
from repro.data.spec import DatasetSpec, FieldSpec
from repro.graph.builder import WorkloadStats
from repro.models import can, dien, din, dlrm, deepfm, mmoe, wide_deep

#: Per-GPU batch sizes used in the Tab. III benchmark comparison.
BENCHMARK_BATCH_SIZES = {
    "DLRM": {"PICASSO": 42_000, "PyTorch": 7_000, "TF-PS": 6_000,
             "Horovod": 10_000},
    "DeepFM": {"PICASSO": 30_000, "PyTorch": 7_000, "TF-PS": 7_000,
               "Horovod": 8_000},
    "DIN": {"PICASSO": 32_000, "PyTorch": 20_000, "TF-PS": 16_000,
            "Horovod": 24_000},
    "DIEN": {"PICASSO": 32_000, "PyTorch": 16_000, "TF-PS": 12_000,
             "Horovod": 24_000},
}

#: Production-model batch sizes (per worker) for the EFLOPS studies.
PRODUCTION_BATCH_SIZES = {"W&D": 20_000, "CAN": 12_000, "MMoE": 9_000}

_SHARED_STATS = WorkloadStats()
_MODEL_CACHE: dict = {}


def benchmark_model(name: str):
    """(model, dataset) for a Tab. III benchmark model by name."""
    if name not in _MODEL_CACHE:
        builders = {
            "DLRM": (dlrm, criteo),
            "DeepFM": (deepfm, criteo),
            "DIN": (din, alibaba),
            "DIEN": (dien, alibaba),
        }
        if name not in builders:
            raise KeyError(f"unknown benchmark model {name!r}")
        build, dataset_fn = builders[name]
        dataset = dataset_fn(1.0)
        _MODEL_CACHE[name] = (build(dataset), dataset)
    return _MODEL_CACHE[name]


def production_model(name: str):
    """(model, dataset) for a production model (W&D / CAN / MMoE)."""
    if name not in _MODEL_CACHE:
        builders = {
            "W&D": (wide_deep, product1),
            "CAN": (can, product2),
            "MMoE": (mmoe, product3),
        }
        if name not in builders:
            raise KeyError(f"unknown production model {name!r}")
        build, dataset_fn = builders[name]
        dataset = dataset_fn(1.0)
        _MODEL_CACHE[name] = (build(dataset), dataset)
    return _MODEL_CACHE[name]


def run_framework(framework: str, model, cluster, batch_size: int,
                  iterations: int = 3) -> RunReport:
    """Simulate one framework (baseline name or ``"PICASSO"``).

    Thin wrapper over :func:`repro.api.run`, reusing an already-built
    model (the experiment harnesses sweep frameworks over one model).
    """
    config = RunConfig(framework=framework, cluster=cluster,
                       batch_size=batch_size, iterations=iterations)
    return run_config(config, model=model)


def run_picasso(model, cluster, batch_size: int,
                config: PicassoConfig | None = None,
                iterations: int = 3) -> RunReport:
    """Simulate PICASSO with an explicit config (ablations, sweeps)."""
    request = RunConfig(framework="PICASSO", cluster=cluster,
                        batch_size=batch_size, iterations=iterations,
                        picasso=config)
    return run_config(request, model=model)


def mini_criteo(fields: int = 8, vocab: int = 30_000) -> DatasetSpec:
    """Laptop-scale Criteo stand-in for the real-training experiments."""
    return DatasetSpec(
        name="MiniCriteo", num_numeric=4,
        fields=tuple(
            FieldSpec(name=f"cat_{index}", vocab_size=vocab,
                      embedding_dim=16, zipf_exponent=1.1)
            for index in range(fields)))


def mini_alibaba(profile_fields: int = 3, behavior_fields: int = 2,
                 seq_length: int = 10) -> DatasetSpec:
    """Laptop-scale Alibaba stand-in (multi-hot behaviour sequences)."""
    fields = [
        FieldSpec(name=f"profile_{index}", vocab_size=50_000,
                  embedding_dim=8, zipf_exponent=1.2)
        for index in range(profile_fields)
    ]
    fields += [
        FieldSpec(name=f"behavior_{index}", vocab_size=100_000,
                  embedding_dim=8, seq_length=seq_length,
                  zipf_exponent=1.25)
        for index in range(behavior_fields)
    ]
    return DatasetSpec(name="MiniAlibaba", num_numeric=0,
                       fields=tuple(fields))


def format_table(rows: list, columns: list) -> str:
    """Render records as a fixed-width text table for bench output."""
    widths = [max(len(str(column)),
                  max((len(str(row.get(column, ""))) for row in rows),
                      default=0))
              for column in columns]
    header = "  ".join(str(column).ljust(width)
                       for column, width in zip(columns, widths))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(width)
                               for column, width in zip(columns, widths)))
    return "\n".join(lines)
