"""Tab. IV: ablation of packing / interleaving / caching.

For W&D, CAN and MMoE on 16 EFLOPS nodes, remove one optimization at a
time and record IPS, PCIe GB/s, network Gbps, and SM utilization.
Paper shape: packing is worth ~+30% (most on comm-heavy models),
interleaving up to +93% (most on compute-heavy MMoE), caching up to
+13%.
"""

from __future__ import annotations

from repro.core import PicassoConfig
from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
    run_picasso,
)
from repro.hardware import eflops_cluster

VARIANTS = ("PICASSO", "w/o Packing", "w/o Interleaving", "w/o Caching")


def _config_for(variant: str) -> PicassoConfig:
    if variant == "PICASSO":
        return PicassoConfig()
    key = variant.split()[-1].lower()
    return PicassoConfig().without(key)


def run_ablation(iterations: int = 3, num_nodes: int = 16,
                 models: tuple = ("W&D", "CAN", "MMoE")) -> list:
    """The full Tab. IV grid."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for model_name in models:
        model, _dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        for variant in VARIANTS:
            report = run_picasso(model, cluster, batch,
                                 config=_config_for(variant),
                                 iterations=iterations)
            rows.append({
                "model": model_name,
                "variant": variant,
                "ips": round(report.ips),
                "pcie_gbps": round(report.pcie_gbps, 2),
                "comm_gbps": round(report.net_gbps, 2),
                "sm_util_pct": round(report.sm_utilization * 100),
            })
    return rows


def contribution_percentages(rows: list) -> list:
    """Speedup of full PICASSO over each ablated variant."""
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["variant"]] = row["ips"]
    summary = []
    for model, ips in by_model.items():
        full = ips["PICASSO"]
        summary.append({
            "model": model,
            "packing_gain_pct": round(
                (full / ips["w/o Packing"] - 1) * 100, 1),
            "interleaving_gain_pct": round(
                (full / ips["w/o Interleaving"] - 1) * 100, 1),
            "caching_gain_pct": round(
                (full / ips["w/o Caching"] - 1) * 100, 1),
        })
    return summary


def paper_reference() -> list:
    """Tab. IV as published."""
    return [
        {"model": "W&D", "variant": "PICASSO", "ips": 22_825,
         "pcie_gbps": 1.57, "comm_gbps": 2.48, "sm_util_pct": 32},
        {"model": "W&D", "variant": "w/o Packing", "ips": 17_827,
         "pcie_gbps": 1.54, "comm_gbps": 1.84, "sm_util_pct": 23},
        {"model": "W&D", "variant": "w/o Interleaving", "ips": 16_218,
         "pcie_gbps": 1.49, "comm_gbps": 1.69, "sm_util_pct": 21},
        {"model": "W&D", "variant": "w/o Caching", "ips": 19_264,
         "pcie_gbps": 1.51, "comm_gbps": 2.07, "sm_util_pct": 25},
        {"model": "CAN", "variant": "PICASSO", "ips": 12_218,
         "pcie_gbps": 2.59, "comm_gbps": 8.50, "sm_util_pct": 62},
        {"model": "CAN", "variant": "w/o Packing", "ips": 8_769,
         "pcie_gbps": 2.55, "comm_gbps": 6.66, "sm_util_pct": 45},
        {"model": "CAN", "variant": "w/o Interleaving", "ips": 7_957,
         "pcie_gbps": 2.02, "comm_gbps": 6.94, "sm_util_pct": 43},
        {"model": "CAN", "variant": "w/o Caching", "ips": 10_829,
         "pcie_gbps": 2.60, "comm_gbps": 7.41, "sm_util_pct": 51},
        {"model": "MMoE", "variant": "PICASSO", "ips": 2_546,
         "pcie_gbps": 2.31, "comm_gbps": 6.61, "sm_util_pct": 98},
        {"model": "MMoE", "variant": "w/o Packing", "ips": 2_270,
         "pcie_gbps": 2.27, "comm_gbps": 6.10, "sm_util_pct": 96},
        {"model": "MMoE", "variant": "w/o Interleaving", "ips": 1_319,
         "pcie_gbps": 1.87, "comm_gbps": 3.80, "sm_util_pct": 64},
        {"model": "MMoE", "variant": "w/o Caching", "ips": 2_401,
         "pcie_gbps": 2.28, "comm_gbps": 6.44, "sm_util_pct": 98},
    ]
