"""Fig. 13: production-model IPS — PS baseline vs PICASSO(Base) vs PICASSO.

On 16 EFLOPS nodes, the hybrid strategy alone (PICASSO(Base)) is
comparable to the tuned async-PS baseline; the software-system
optimizations then deliver ~4x on CAN and MMoE.
"""

from __future__ import annotations

from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
    run_framework,
)
from repro.hardware import eflops_cluster

SYSTEMS = ("TF-PS", "PICASSO(Base)", "PICASSO")


def run_production_ips(iterations: int = 3, num_nodes: int = 16) -> list:
    """IPS per (model, system) on the EFLOPS cluster."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for model_name in ("W&D", "CAN", "MMoE"):
        model, _dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        for system in SYSTEMS:
            report = run_framework(system, model, cluster, batch,
                                   iterations=iterations)
            rows.append({
                "model": model_name,
                "system": system,
                "ips": round(report.ips),
                "sm_util_pct": round(report.sm_utilization * 100, 1),
            })
    return rows


def accelerations(rows: list) -> list:
    """PICASSO acceleration over the PS baseline per model."""
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["system"]] = row["ips"]
    return [
        {"model": model,
         "picasso_vs_ps": round(ips["PICASSO"] / ips["TF-PS"], 2)}
        for model, ips in by_model.items()
    ]


def paper_reference() -> dict:
    """Fig. 13's headline."""
    return {"claim": "~4x acceleration on CAN and MMoE over the PS "
                     "baseline; W&D improves more modestly"}
