"""Tab. VI: hit ratio and IPS by Hot-storage size.

Bigger Hot-storage raises the per-batch unique-ID hit ratio with a
clear marginal effect past ~2 GB, while an oversized cache displaces
activation memory and forces a smaller batch, *reducing* throughput —
so 1 GB (>=20% hit ratio) is the production sweet spot.
"""

from __future__ import annotations

from repro.core import PicassoConfig
from repro.core.caching import batch_size_penalty, expected_hit_ratio
from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
    run_picasso,
)
from repro.hardware import eflops_cluster

_GIB = float(1 << 30)
HOT_SIZES = {
    "256MB": 0.25 * _GIB,
    "512MB": 0.5 * _GIB,
    "1GB": 1.0 * _GIB,
    "2GB": 2.0 * _GIB,
    "4GB": 4.0 * _GIB,
}


def run_hot_storage_sweep(iterations: int = 2, num_nodes: int = 16,
                          models: tuple = ("W&D", "CAN", "MMoE")) -> list:
    """Hit ratio + IPS delta (vs the 1 GB default) per cache size."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    device_budget = PicassoConfig().device_memory_budget
    for model_name in models:
        model, dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        baseline_ips = None
        for label, hot_bytes in HOT_SIZES.items():
            plan = expected_hit_ratio(dataset, hot_bytes, batch)
            penalty = batch_size_penalty(hot_bytes, device_budget)
            effective_batch = max(1, int(batch * penalty))
            config = PicassoConfig(hot_storage_bytes=hot_bytes)
            report = run_picasso(model, cluster, effective_batch,
                                 config=config, iterations=iterations)
            if label == "1GB":
                baseline_ips = report.ips
            rows.append({
                "model": model_name,
                "hot_storage": label,
                "hit_ratio_pct": round(plan.hit_ratio * 100, 1),
                "ips": round(report.ips),
            })
        for row in rows:
            if row["model"] == model_name and baseline_ips:
                row["ips_delta_pct"] = round(
                    (row["ips"] / baseline_ips - 1) * 100, 1)
    return rows


def paper_reference() -> list:
    """Tab. VI as published (hit ratio %, IPS delta vs 1 GB)."""
    return [
        {"hot_storage": "256MB", "W&D": (9, -11), "CAN": (20, -19),
         "MMoE": (9, -3)},
        {"hot_storage": "512MB", "W&D": (18, -5), "CAN": (28, -10),
         "MMoE": (16, -1)},
        {"hot_storage": "1GB", "W&D": (24, 0), "CAN": (37, 0),
         "MMoE": (21, 0)},
        {"hot_storage": "2GB", "W&D": (28, 1), "CAN": (44, 5),
         "MMoE": (24, 0)},
        {"hot_storage": "4GB", "W&D": (31, -3), "CAN": (45, 2),
         "MMoE": (27, -2)},
    ]
