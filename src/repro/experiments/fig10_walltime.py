"""Fig. 10: training walltime (GPU core hours) of the four benchmarks.

One epoch of the dataset per common industrial practice; TF-PS is the
slowest, Horovod/PyTorch improve substantially via collectives, and
PICASSO is fastest — at least 1.9x over the best baseline and up to
10x over TF-PS, with the largest advantage on DIN/DIEN.
"""

from __future__ import annotations

from repro.experiments.common import (
    BENCHMARK_BATCH_SIZES,
    benchmark_model,
    run_framework,
)
from repro.hardware import gn6e_cluster

FRAMEWORKS = ("TF-PS", "PyTorch", "Horovod", "PICASSO")

#: One-epoch instance counts (Tab. II; Alibaba 13M x multiple passes in
#: the original setup — we use the raw instance count).
EPOCH_INSTANCES = {"DLRM": 4e9, "DeepFM": 4e9, "DIN": 13e6, "DIEN": 13e6}


def run_walltime(iterations: int = 3) -> list:
    """IPS and GPU-core-hours per (model, framework) on one Gn6e node."""
    cluster = gn6e_cluster(1)
    rows = []
    for model_name, batches in BENCHMARK_BATCH_SIZES.items():
        model, _dataset = benchmark_model(model_name)
        for framework in FRAMEWORKS:
            report = run_framework(framework, model, cluster,
                                   batches[framework],
                                   iterations=iterations)
            hours = report.gpu_core_hours(EPOCH_INSTANCES[model_name])
            rows.append({
                "model": model_name,
                "framework": framework,
                "batch": batches[framework],
                "ips": round(report.ips),
                "gpu_core_hours": round(hours, 2),
            })
    return rows


def speedups(rows: list) -> list:
    """Per-model speedup of PICASSO vs TF-PS and vs the best baseline."""
    summary = []
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["framework"]] = row["ips"]
    for model, ips in by_model.items():
        best_baseline = max(ips["PyTorch"], ips["Horovod"])
        summary.append({
            "model": model,
            "vs_tf_ps": round(ips["PICASSO"] / ips["TF-PS"], 2),
            "vs_best_baseline": round(ips["PICASSO"] / best_baseline, 2),
        })
    return summary


def paper_reference() -> dict:
    """Fig. 10's quantitative claims."""
    return {
        "ordering": "TF-PS slowest; PICASSO fastest on all four models",
        "speedup_vs_tf_ps": "1.9x .. 10x",
        "note": "advantage most remarkable on DIN and DIEN",
    }
