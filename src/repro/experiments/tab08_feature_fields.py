"""Tab. VIII: throughput while multiplying the number of feature fields.

The paper duplicates Product-2's fields k times (the dataset has no
real workload that wide) and duplicates the interaction layers
accordingly.  Ideal cost grows linearly, so the arithmetic-progression
(AP) prediction is ``IPS(1)/k``.  PICASSO lands slightly *above* AP
(packing amortizes the extra fields); the PS baseline falls further
*below* AP as fragmentary operations multiply.
"""

from __future__ import annotations

from repro.baselines import framework_by_name
from repro.core import PicassoConfig, PicassoExecutor
from repro.data import product2
from repro.hardware import eflops_cluster
from repro.models import can


def run_feature_field_sweep(multiples: tuple = (1, 2, 4, 8),
                            batch_size: int = 12_000,
                            iterations: int = 2, num_nodes: int = 16,
                            scale: float = 1.0) -> list:
    """IPS vs field-count multiple for PICASSO and XDL, with AP."""
    cluster = eflops_cluster(num_nodes)
    base = product2(scale)
    rows = []
    reference = {}
    for multiple in multiples:
        dataset = base.replicated(multiple) if multiple > 1 else base
        model = can(dataset)
        # One configuration tuned on the base workload, reused across
        # the sweep (the paper keeps the training setup fixed while
        # duplicating fields).
        config = PicassoConfig(interleave_sets=5, micro_batches=3)
        picasso = PicassoExecutor(model, cluster, config).run(
            batch_size, iterations=iterations)
        xdl = framework_by_name("XDL").run(model, cluster, batch_size,
                                           iterations=iterations)
        if multiple == multiples[0]:
            reference = {"PICASSO": picasso.ips * multiple,
                         "XDL": xdl.ips * multiple}
        ap_picasso = reference["PICASSO"] / multiple
        ap_xdl = reference["XDL"] / multiple
        rows.append({
            "fields_multiple": multiple,
            "picasso_ips": round(picasso.ips),
            "picasso_ap": round(ap_picasso),
            "picasso_vs_ap_pct": round(
                (picasso.ips / ap_picasso - 1) * 100, 1),
            "xdl_ips": round(xdl.ips),
            "xdl_ap": round(ap_xdl),
            "xdl_vs_ap_pct": round((xdl.ips / ap_xdl - 1) * 100, 1),
        })
    return rows


def paper_reference() -> dict:
    """Tab. VIII's quantitative shape."""
    return {
        "picasso_vs_ap": "0% at x1 rising to +5.3% at x8 (above AP)",
        "xdl_vs_ap": "0% at x1 falling to -15.3% at x8 (below AP)",
    }
