"""Auto-tuning study (ROADMAP extension, not a paper table): how well
trace-driven what-if search recovers the knobs the paper tunes
"empirically from warm-up iterations".

One baseline run of the training bench scenario is recorded once; each
registered search strategy then hunts PICASSO's knob space
(K-Interleaving sets, D-Interleaving micro-batches, HybridHash hot
storage) and validates its top predictions with real runs through
:func:`repro.api.tune`.  The table reports, per strategy:

* ``gain_pct`` — measured ips improvement of the crowned winner over
  the untouched baseline (the ``tune`` acceptance floor is >= 10% on
  coordinate descent);
* ``fidelity_pct`` — signed replay-prediction error on the winner
  (|error| <= 15% is the acceptance ceiling), trivially 0 for the
  fully-measured ``warmup-grid`` legacy strategy;
* ``validated`` / ``candidates`` — real runs spent vs candidates
  priced, the replay's whole point being that the second number can
  grow without the first.

The table is a pure function of the modeled run (no RNG anywhere in
the loop), so repeated invocations are byte-identical.
"""

from __future__ import annotations

from repro.api import RunConfig, TuneConfig, tune
from repro.tuning import strategies

#: The training bench scenario (mirrors ``bench_training``).
BASE = RunConfig(model="W&D", dataset="Product-1", scale=0.05,
                 cluster="eflops:2", batch_size=4_000, iterations=2)


def _format_assignment(assignment: dict) -> str:
    if not assignment:
        return "(baseline)"
    parts = []
    for key, value in sorted(assignment.items()):
        if key == "hot_storage_bytes":
            parts.append(f"hot={value / (1 << 30):g}GiB")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def run_autotune(base: RunConfig = BASE,
                 strategy_names: tuple | None = None) -> list:
    """One row per registered search strategy on the bench scenario."""
    names = strategy_names or strategies()
    model = base.build_model()
    rows = []
    for name in names:
        result = tune(TuneConfig(run=base, strategy=name), model=model)
        rows.append({
            "strategy": name,
            "winner": _format_assignment(result.best_assignment),
            "base_ips": f"{result.base_ips:,.0f}",
            "best_ips": f"{result.best_ips:,.0f}",
            "gain_pct": f"{result.gain * 100:+.1f}",
            "fidelity_pct": f"{result.fidelity_error * 100:+.1f}",
            "validated": len(result.validations),
            "candidates": result.candidates_evaluated,
        })
    return rows
