"""Fig. 5: worker-side time breakdown of W&D / CAN / MMoE.

The paper profiles the three production models under the PS and MP
strategies and classifies worker time into I/O & memory access,
communication, and computation, reporting also the *exposed* fraction
(periods blocking everything else).  Headline numbers: W&D exposes
~20% I/O+memory even with overlap; CAN spends ~60% (MP) to ~70% (PS)
in communication; MMoE spends ~50% in arithmetic.
"""

from __future__ import annotations

from repro.baselines import framework_by_name
from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
)
from repro.hardware import eflops_cluster

#: Strategy per Fig. 5 panel: PS (TF-PS profile) and MP (PyTorch profile).
STRATEGY_PROFILES = {"PS": "TF-PS", "MP": "PyTorch"}


def run_breakdown(iterations: int = 2, num_nodes: int = 16) -> list:
    """Active/exposed fractions per (model, strategy, category)."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for model_name in ("W&D", "CAN", "MMoE"):
        model, _dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        for strategy, profile in STRATEGY_PROFILES.items():
            report = framework_by_name(profile).run(
                model, cluster, batch, iterations=iterations)
            for category, values in report.breakdown.items():
                rows.append({
                    "model": model_name,
                    "strategy": strategy,
                    "category": category,
                    "active_pct": round(values["active"] * 100, 1),
                    "exposed_pct": round(values["exposed"] * 100, 1),
                })
    return rows


def paper_reference() -> dict:
    """Fig. 5's headline fractions."""
    return {
        "W&D": "exposed I/O + memory access ~20% of walltime",
        "CAN": "communication ~60% (MP) to ~70% (PS) of walltime",
        "MMoE": "computation ~50% of walltime",
    }
