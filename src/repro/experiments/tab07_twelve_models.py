"""Tab. VII: twelve AUC-prediction models, XDL vs PICASSO.

All models run over the Product-2 dataset (slightly modified to fit,
as in the paper).  PICASSO's D-Interleaving lets every model train with
a k-times larger effective batch (the "20K -> 36K (18K x 2)" notation),
raising GPU SM utilization by +64..341% and IPS by +50..215%.
"""

from __future__ import annotations

from repro.baselines import framework_by_name
from repro.core import PicassoConfig, PicassoExecutor
from repro.data import product2
from repro.hardware import eflops_cluster
from repro.models import MODEL_BUILDERS

#: (XDL batch, PICASSO micro-batch count) per model, following Tab. VII
#: ("20K -> 36K (20K x 2)" means XDL ran 20K and PICASSO 2 micro-batches).
TAB7_BATCHES = {
    "LR": (20_000, 2),
    "W&D": (18_000, 2),
    "TwoTowerDNN": (12_000, 3),
    "DLRM": (10_000, 3),
    "DCN": (12_000, 3),
    "xDeepFM": (5_000, 4),
    "ATBRG": (3_000, 2),
    "DIN": (15_000, 3),
    "DIEN": (15_000, 3),
    "DSIN": (9_000, 3),
    "CAN": (12_000, 4),
    "STAR": (2_000, 4),
}


def run_twelve_models(iterations: int = 2, num_nodes: int = 16,
                      scale: float = 1.0,
                      models: tuple | None = None) -> list:
    """XDL-vs-PICASSO SM utilization and IPS for the Tab. VII zoo."""
    dataset = product2(scale)
    cluster = eflops_cluster(num_nodes)
    rows = []
    names = models or tuple(TAB7_BATCHES)
    for name in names:
        base_batch, micro = TAB7_BATCHES[name]
        model = MODEL_BUILDERS[name](dataset)
        xdl = framework_by_name("XDL").run(model, cluster, base_batch,
                                           iterations=iterations)
        config = PicassoConfig(micro_batches=micro)
        picasso = PicassoExecutor(model, cluster, config).run(
            base_batch * micro, iterations=iterations)
        rows.append({
            "model": name,
            "xdl_batch": base_batch,
            "picasso_batch": base_batch * micro,
            "xdl_sm_pct": round(xdl.sm_utilization * 100),
            "picasso_sm_pct": round(picasso.sm_utilization * 100),
            "sm_gain_pct": round(
                (picasso.sm_utilization / max(1e-9, xdl.sm_utilization)
                 - 1) * 100),
            "xdl_ips": round(xdl.ips),
            "picasso_ips": round(picasso.ips),
            "ips_gain_pct": round((picasso.ips / xdl.ips - 1) * 100),
        })
    return rows


def paper_reference() -> list:
    """Tab. VII as published (SM util change, IPS change)."""
    return [
        {"model": "LR", "sm": "9 -> 22 (+144%)",
         "ips": "12.0K -> 25.9K (+115%)"},
        {"model": "W&D", "sm": "21 -> 35 (+67%)",
         "ips": "14.7K -> 22.2K (+50%)"},
        {"model": "TwoTowerDNN", "sm": "35 -> 97 (+177%)",
         "ips": "4.7K -> 12.1K (+160%)"},
        {"model": "DLRM", "sm": "38 -> 98 (+158%)",
         "ips": "3.8K -> 10.4K (+171%)"},
        {"model": "DCN", "sm": "56 -> 92 (+64%)",
         "ips": "9.0K -> 13.7K (+52%)"},
        {"model": "xDeepFM", "sm": "45 -> 98 (+117%)",
         "ips": "3.1K -> 5.9K (+89%)"},
        {"model": "ATBRG", "sm": "13 -> 26 (+100%)",
         "ips": "0.8K -> 1.4K (+82%)"},
        {"model": "DIN", "sm": "34 -> 80 (+135%)",
         "ips": "7.5K -> 16.0K (+113%)"},
        {"model": "DIEN", "sm": "29 -> 75 (+159%)",
         "ips": "7.3K -> 15.6K (+115%)"},
        {"model": "DSIN", "sm": "40 -> 93 (+133%)",
         "ips": "4.7K -> 9.8K (+111%)"},
        {"model": "CAN", "sm": "17 -> 75 (+341%)",
         "ips": "3.9K -> 12.1K (+210%)"},
        {"model": "STAR", "sm": "32 -> 98 (+206%)",
         "ips": "0.6K -> 2.0K (+215%)"},
    ]
