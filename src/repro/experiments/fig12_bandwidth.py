"""Fig. 12: PCIe and NVLink bandwidth consumption, DLRM, four systems.

TF-PS routes everything through PS over PCIe/Ethernet so NVLink stays
dark; the collective frameworks light up NVLink; PICASSO sustains the
highest link usage thanks to interleaved pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    BENCHMARK_BATCH_SIZES,
    benchmark_model,
    run_framework,
)
from repro.hardware import gn6e_cluster
from repro.sim.metrics import bandwidth_timeline
from repro.sim.resource import ResourceKind

FRAMEWORKS = ("TF-PS", "PyTorch", "Horovod", "PICASSO")


def run_bandwidth(iterations: int = 3, bucket: float = 0.010) -> list:
    """Mean/peak PCIe + NVLink bandwidth per framework (GB/s)."""
    cluster = gn6e_cluster(1)
    model, _dataset = benchmark_model("DLRM")
    rows = []
    for framework in FRAMEWORKS:
        batch = BENCHMARK_BATCH_SIZES["DLRM"][framework]
        report = run_framework(framework, model, cluster, batch,
                               iterations=iterations)
        result = report.result
        _t, pcie = bandwidth_timeline(result.recorder, ResourceKind.PCIE,
                                      result.makespan, bucket)
        nvlink = np.zeros(1)
        if ResourceKind.NVLINK in result.recorder.kinds():
            _t, nvlink = bandwidth_timeline(
                result.recorder, ResourceKind.NVLINK, result.makespan,
                bucket)
        rows.append({
            "framework": framework,
            "pcie_mean_gbps": round(float(pcie.mean()) / 1e9, 2)
            if pcie.size else 0.0,
            "pcie_peak_gbps": round(float(pcie.max()) / 1e9, 2)
            if pcie.size else 0.0,
            "nvlink_mean_gbps": round(float(nvlink.mean()) / 1e9, 2)
            if nvlink.size else 0.0,
            "nvlink_peak_gbps": round(float(nvlink.max()) / 1e9, 2)
            if nvlink.size else 0.0,
        })
    return rows


def paper_reference() -> dict:
    """Fig. 12's qualitative claims."""
    return {
        "TF-PS": "no NVLink traffic (PS mode bypasses it)",
        "PICASSO": ("highest bandwidth usage; slightly above Horovod/"
                    "PyTorch thanks to interleaved pipelines"),
    }
