"""Tab. V: operation counts, baseline vs PICASSO.

D-Packing + K-Packing collapse the fragmentary per-field operations:
the paper reports W&D 100,039 -> 14,882 (14.9%), CAN 381,364 -> 67,985
(17.8%), MMoE 300,524 -> 75,217 (25.0%); packed embedding counts drop
from 204/364/94 to 16/19/11.
"""

from __future__ import annotations

from repro.baselines import framework_by_name
from repro.core import PicassoExecutor
from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
)
from repro.graph.builder import IterationGraphBuilder
from repro.hardware import eflops_cluster


def run_op_counts(num_nodes: int = 16) -> list:
    """Framework-op counts + packed embedding counts (no simulation)."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for model_name in ("W&D", "CAN", "MMoE"):
        model, dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]

        baseline_plan = framework_by_name("TF-PS").plan(
            model, cluster, batch)
        baseline_graph = IterationGraphBuilder(baseline_plan).build(1)

        executor = PicassoExecutor(model, cluster)
        picasso_plan = executor.plan(batch)
        picasso_graph = IterationGraphBuilder(picasso_plan).build(1)

        baseline_ops = baseline_graph.total_micro_ops
        picasso_ops = picasso_graph.total_micro_ops
        rows.append({
            "model": model_name,
            "baseline_ops": baseline_ops,
            "picasso_ops": picasso_ops,
            "ops_pct": round(picasso_ops / baseline_ops * 100, 1),
            "baseline_packed_emb": dataset.num_fields,
            "picasso_packed_emb": len(picasso_plan.groups),
        })
    return rows


def paper_reference() -> list:
    """Tab. V as published."""
    return [
        {"model": "W&D", "baseline_ops": 100_039, "picasso_ops": 14_882,
         "ops_pct": 14.9, "baseline_packed_emb": 204,
         "picasso_packed_emb": 16},
        {"model": "CAN", "baseline_ops": 381_364, "picasso_ops": 67_985,
         "ops_pct": 17.8, "baseline_packed_emb": 364,
         "picasso_packed_emb": 19},
        {"model": "MMoE", "baseline_ops": 300_524, "picasso_ops": 75_217,
         "ops_pct": 25.0, "baseline_packed_emb": 94,
         "picasso_packed_emb": 11},
    ]
