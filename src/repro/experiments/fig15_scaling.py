"""Fig. 15: scaling out from 1 to 128 PICASSO-Executors.

CAN and MMoE scale near-linearly; W&D is sublinear because its cheap
per-instance work leaves the growing collective overhead exposed.
"""

from __future__ import annotations

from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
    run_picasso,
)
from repro.hardware import eflops_cluster

WORKER_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def run_scaling(worker_counts: tuple = WORKER_COUNTS,
                iterations: int = 2,
                models: tuple = ("W&D", "CAN", "MMoE")) -> list:
    """Aggregate cluster IPS per (model, worker count)."""
    rows = []
    for model_name in models:
        model, _dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        for workers in worker_counts:
            cluster = eflops_cluster(workers)
            report = run_picasso(model, cluster, batch,
                                 iterations=iterations)
            rows.append({
                "model": model_name,
                "workers": workers,
                "cluster_ips": round(report.ips * workers),
                "per_worker_ips": round(report.ips),
            })
    return rows


def scaling_efficiency(rows: list) -> list:
    """Cluster IPS at max scale relative to perfect linear scaling."""
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["workers"]] = \
            row["cluster_ips"]
    summary = []
    for model, points in by_model.items():
        smallest = min(points)
        largest = max(points)
        ideal = points[smallest] * (largest / smallest)
        summary.append({
            "model": model,
            "workers": largest,
            "efficiency_pct": round(points[largest] / ideal * 100, 1),
        })
    return summary


def paper_reference() -> dict:
    """Fig. 15's qualitative claim."""
    return {
        "claim": ("near-linear scalability on CAN and MMoE; sublinear "
                  "throughput on W&D"),
    }
