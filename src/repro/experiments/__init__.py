"""Experiment harnesses: one module per table/figure in the paper.

Every module exposes a ``run_*`` function returning plain dict/list
records plus a ``paper_reference()`` with the published values, so the
benchmarks can print paper-vs-measured side by side and EXPERIMENTS.md
can be regenerated from the same source of truth.
"""

from repro.experiments import common

__all__ = ["common"]
