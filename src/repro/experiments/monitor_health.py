"""Run-health monitors across frameworks (the Fig. 4/5 pulse story).

Two tables: the pulse detector and overlap monitor applied to the
fig05-style breakdown workload under each distribution strategy, and
the comm/compute overlap ratio with K-Interleaving on vs off.  The
baselines alternate between memory-bound and compute-bound pulses with
exposed communication; PICASSO's pipelined schedule flattens the
pulses and hides communication behind compute — the paper's narrative,
as monitor output.
"""

from __future__ import annotations

from repro.api import RunConfig, profile
from repro.core import PicassoConfig

#: Small fig05-style workload: W&D under each strategy.
WORKLOAD = dict(model="W&D", dataset="Product-1", scale=0.05,
                cluster="eflops:2", batch_size=4_000, iterations=2)

#: Frameworks in the paper's Fig. 5 comparison, plus PICASSO.
STRATEGIES = ("TF-PS", "PyTorch", "PICASSO")


def run_monitor_health() -> list:
    """Pulse/overlap monitor summaries per distribution strategy."""
    rows = []
    for framework in STRATEGIES:
        result = profile(RunConfig(framework=framework, **WORKLOAD))
        pulse = result.monitors["pulse"].summary
        overlap = result.monitors["overlap"].summary
        rows.append({
            "framework": framework,
            "phases": pulse["num_phases"],
            "mem/compute/idle": (f"{pulse['memory_phases']}/"
                                 f"{pulse['compute_phases']}/"
                                 f"{pulse['idle_phases']}"),
            "alternations": pulse["alternations"],
            "idle": f"{pulse['idle_fraction']:.1%}",
            "overlap": f"{overlap['overlap_ratio']:.1%}",
            "alerts": sum(len(result.monitors[name].alerts)
                          for name in result.monitors),
        })
    return rows


def run_overlap_ablation() -> list:
    """Comm/compute overlap with K-Interleaving on vs off."""
    workload = dict(WORKLOAD, cluster="eflops:4", batch_size=8_000)
    rows = []
    for label, picasso in (("interleaving on", PicassoConfig()),
                           ("interleaving off",
                            PicassoConfig().without("interleaving"))):
        result = profile(RunConfig(picasso=picasso, **workload))
        overlap = result.monitors["overlap"].summary
        rows.append({
            "variant": label,
            "overlap": f"{overlap['overlap_ratio']:.1%}",
            "hidden_ms": f"{overlap['overlapped_seconds'] * 1e3:.2f}",
            "exposed_ms": f"{overlap['exposed_seconds'] * 1e3:.2f}",
            "groups": overlap["num_groups"],
            "ips": f"{result.report.ips:,.0f}",
        })
    return rows
