"""Fig. 1: GPU utilization trend across WDL model generations.

The paper's opening observation: as recommendation models evolved from
collaborative filtering toward wide-and-deep designs with more feature
fields and interaction modules, *canonical PS training left GPUs more
and more underutilized* (from ~40% down to ~10-20%), even as accuracy
improved.  We reproduce the trend by training the model generations on
the PS strategy and measuring GPU busy time.
"""

from __future__ import annotations

from repro.data import product2
from repro.experiments.common import run_framework
from repro.hardware import eflops_cluster
from repro.models import MODEL_BUILDERS

#: The generation sequence from Fig. 1 (left-to-right in time).
MODEL_GENERATIONS = ["LR", "W&D", "DeepFM", "DIN", "DIEN", "MMoE", "CAN"]


def run_gpu_util_trend(batch_size: int = 8_000, iterations: int = 2,
                       scale: float = 0.2) -> list:
    """GPU SM utilization per model generation under PS training."""
    dataset = product2(scale)
    cluster = eflops_cluster(8)
    rows = []
    for name in MODEL_GENERATIONS:
        model = MODEL_BUILDERS[name](dataset)
        report = run_framework("TF-PS", model, cluster, batch_size,
                               iterations=iterations)
        rows.append({
            "model": name,
            "gpu_util_pct": round(report.sm_utilization * 100, 1),
            "ips": round(report.ips),
        })
    return rows


def paper_reference() -> dict:
    """Qualitative claim from Fig. 1."""
    return {
        "claim": ("average GPU utilization of PS-trained WDL models "
                  "stays in the 10-40% band and trends down as models "
                  "widen/deepen; CV/NLP reach 95%+"),
        "band": (5, 45),
    }
