"""Staleness-vs-AUC study: how fast does a served model rot?

The continuous loop's whole reason to exist: under concept drift
(:class:`~repro.online.stream.DriftingStream` rotates the Zipf-hot ID
window every step) a serving replica's quality decays with the age of
its weights, because newly-hot IDs have embeddings the stale snapshot
never trained.  This experiment measures that decay prequentially
(test-then-train, the standard online-learning protocol): at every
stream step the *serving copy* scores the batch first, then the
trainer learns from it, and the copy refreshes from the trainer only
every ``publish_interval`` steps.

All intervals replay the byte-identical stream (random-access batches)
from a shared warm-up state, so the AUC column isolates exactly one
variable — publish cadence — and is expected to degrade monotonically
as the interval grows.
"""

from __future__ import annotations

import numpy as np

from repro.nn.metrics import auc_score
from repro.nn.network import WdlNetwork
from repro.online.hotswap import clone_network
from repro.online.stream import DriftingStream
from repro.serving.server import default_serving_dataset
from repro.training.trainer import SyncTrainer

#: Publish cadences swept, in trainer steps (1 = always fresh).
PUBLISH_INTERVALS = (1, 16, 64, 256)


def _sync_weights(source: WdlNetwork, target: WdlNetwork) -> None:
    """Copy all weights from ``source`` into ``target`` (a publish)."""
    for name, table in source.embeddings.items():
        target.embeddings[name].table[:] = table.table
    target.load_dense_state(source.dense_state())


def prequential_auc(publish_interval: int, steps: int = 256,
                    warmup: int = 64, batch_size: int = 256,
                    drift_ids_per_step: float = 16.0,
                    seed: int = 0) -> float:
    """Held-out-by-time AUC of a copy refreshed every ``interval``.

    The trainer and its serving copy walk the same drifting stream;
    scoring happens before training on each batch (so every prediction
    is on genuinely unseen events), and only steps after ``warmup``
    count toward the AUC.
    """
    if publish_interval < 1:
        raise ValueError("publish_interval must be >= 1, got "
                         f"{publish_interval}")
    if not 0 < warmup < steps:
        raise ValueError(f"need 0 < warmup < steps, got {warmup} "
                         f"vs {steps}")
    dataset = default_serving_dataset()
    network = WdlNetwork(dataset, variant="wdl", seed=seed)
    serving = clone_network(network)
    stream = DriftingStream(dataset, batch_size,
                            drift_ids_per_step=drift_ids_per_step,
                            seed=seed)
    trainer = SyncTrainer(network)
    labels = []
    scores = []
    for step in range(steps):
        batch = stream.batch(step)
        if step >= warmup:
            scores.append(serving.predict(batch))
            labels.append(batch.labels)
        trainer.step(batch, index=step)
        # Every interval refreshes the copy; the warm-up boundary syncs
        # unconditionally so all intervals start from the same state.
        if (step + 1 == warmup
                or (step >= warmup
                    and (step + 1 - warmup) % publish_interval == 0)):
            _sync_weights(network, serving)
    return auc_score(np.concatenate(labels), np.concatenate(scores))


def run_staleness_auc(steps: int = 256, warmup: int = 64,
                      batch_size: int = 256,
                      drift_ids_per_step: float = 16.0,
                      seed: int = 0) -> list:
    """AUC across publish cadences; the ``experiment`` CLI entry point."""
    rows = []
    for interval in PUBLISH_INTERVALS:
        auc = prequential_auc(interval, steps=steps, warmup=warmup,
                              batch_size=batch_size,
                              drift_ids_per_step=drift_ids_per_step,
                              seed=seed)
        rows.append({
            "publish_interval": interval,
            # Under a steady cadence the served weights average half an
            # interval old.
            "mean_staleness_steps": f"{(interval - 1) / 2:.1f}",
            "auc": f"{auc:.4f}",
        })
    return rows


def paper_reference() -> str:
    """This study extends the paper; no published numbers exist."""
    return ("Extension study: the paper trains offline. Expected "
            "shape: prequential AUC strictly decreases as the publish "
            "interval grows — stale snapshots miss the embeddings of "
            "newly-hot IDs under drift, which is the case for "
            "delta-snapshot publishing at short cadences.")
