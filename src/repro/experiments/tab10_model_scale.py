"""Tab. X: walltime to train one year of data, by model scale.

On 128 V100 workers, training the accumulated year of data for models
of growing parameter scale: XDL needs 2,072 GPU-core-hours at ~1B and
a (projected) 323,480 at ~1T; PICASSO needs 747 -> 27,256 — reducing
100B-scale training from a month to two days and keeping 1T-scale
under nine days.

The scale ladder maps to model families of growing width/depth, as in
production: ~1B = a narrow W&D, ~10B = full W&D (Product-1), ~100B =
CAN (Product-2), ~1T = MMoE (Product-3).
"""

from __future__ import annotations

from dataclasses import replace

from repro.data import product1, product2, product3
from repro.experiments.common import run_framework
from repro.hardware import eflops_cluster
from repro.models import can, mmoe, wide_deep

#: One year of accumulated training data (instances).
YEAR_INSTANCES = 12e9


def _scale_ladder():
    narrow = product1(0.1)
    narrow = replace(narrow, fields=narrow.fields[:64], name="Product-1/64")
    return [
        ("~1B", wide_deep(narrow), 20_000),
        ("~10B", wide_deep(product1(1.0)), 20_000),
        ("~100B", can(product2(1.0)), 12_000),
        ("~1T", mmoe(product3(1.0)), 9_000),
    ]


def run_model_scale(iterations: int = 2, num_workers: int = 128) -> list:
    """GPU-core-hours per scale tier, XDL vs PICASSO."""
    cluster = eflops_cluster(num_workers)
    rows = []
    for label, model, batch in _scale_ladder():
        record = {"scale": label,
                  "params": f"{model.dataset.total_parameters:.2g}"}
        for system in ("XDL", "PICASSO"):
            report = run_framework(system, model, cluster, batch,
                                   iterations=iterations)
            # GPU-core-hours: the fleet processes workers*ips inst/s
            # while burning `workers` GPU-seconds per second.
            hours = YEAR_INSTANCES / report.ips / 3600.0
            record[f"{system.lower()}_gpu_hours"] = round(hours)
        record["speedup"] = round(
            record["xdl_gpu_hours"] / record["picasso_gpu_hours"], 2)
        rows.append(record)
    return rows


def paper_reference() -> list:
    """Tab. X as published ("P" = projected)."""
    return [
        {"scale": "~1B", "xdl_gpu_hours": 2_072,
         "picasso_gpu_hours": 747},
        {"scale": "~10B", "xdl_gpu_hours": 11_013,
         "picasso_gpu_hours": 2_285},
        {"scale": "~100B", "xdl_gpu_hours": 88_129,
         "picasso_gpu_hours": 6_091},
        {"scale": "~1T", "xdl_gpu_hours": 323_480,
         "picasso_gpu_hours": 27_256},
    ]
