"""Tab. IX: production deployment summary, XDL vs PICASSO.

Over hundreds of daily workloads (Jun-Nov 2021) the paper reports an
average task walltime of 8.6 h (XDL) vs 1.4 h (PICASSO), GPU SM
utilization 15% vs 75%, and sustained bandwidth 1.4 Gbps (TCP) vs
6.9 Gbps (TCP+RDMA) — a ~6x average acceleration that cuts the delay
of daily continuous delivery by 7 hours.

We reproduce the *mix*: a daily task trains a fixed instance budget on
each production model; the averages weight the three models equally.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
    run_framework,
)
from repro.hardware import eflops_cluster

#: Instances one daily task must consume, per model (streaming day).
DAILY_INSTANCES = {"W&D": 600e6, "CAN": 200e6, "MMoE": 60e6}


def run_production_summary(iterations: int = 3,
                           num_nodes: int = 16) -> list:
    """Average daily-task walltime / SM util / bandwidth per system."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for system in ("XDL", "PICASSO"):
        walltimes = []
        sm_utils = []
        bandwidths = []
        for model_name in ("W&D", "CAN", "MMoE"):
            model, _dataset = production_model(model_name)
            batch = PRODUCTION_BATCH_SIZES[model_name]
            report = run_framework(system, model, cluster, batch,
                                   iterations=iterations)
            cluster_ips = report.ips * cluster.num_workers
            walltimes.append(DAILY_INSTANCES[model_name] / cluster_ips
                             / 3600.0)
            sm_utils.append(report.sm_utilization)
            bandwidths.append(report.net_gbps + report.nvlink_gbps)
        rows.append({
            "system": system,
            "avg_task_walltime_h": round(float(np.mean(walltimes)), 2),
            "sm_util_pct": round(float(np.mean(sm_utils)) * 100),
            "bandwidth_gbps": round(float(np.mean(bandwidths)), 2),
        })
    return rows


def paper_reference() -> list:
    """Tab. IX as published."""
    return [
        {"system": "XDL", "avg_task_walltime_h": 8.6, "sm_util_pct": 15,
         "bandwidth_gbps": 1.412},
        {"system": "PICASSO", "avg_task_walltime_h": 1.4,
         "sm_util_pct": 75, "bandwidth_gbps": 6.851},
    ]
