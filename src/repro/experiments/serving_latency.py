"""Serving latency-throughput study (ROADMAP extension, not a paper
table): how cache hierarchy and batcher settings move online tail
latency.

Three cache configurations replay the *same* request trace, so any p99
difference is attributable to tier placement alone — the hierarchy is
strictly ordered by speed (all-HBM < HBM->DRAM < DRAM-only), which is
the load-bearing claim behind extending Algorithm 1's cache to
serving.  A second sweep varies the dynamic batcher's size/deadline to
trace the latency-throughput trade-off.
"""

from __future__ import annotations

from repro.api import ServeConfig, serve

#: (label, cache kind) rows for the tier sweep, fastest first.
CACHE_CONFIGS = (
    ("all-HBM", "hbm"),
    ("HBM->DRAM", "hbm-dram"),
    ("HBM->DRAM->SSD", "hbm-dram-ssd"),
    ("DRAM-only", "dram"),
)

#: (max_batch_size, max_wait_ms) points for the batcher sweep.
BATCHER_CONFIGS = ((16, 0.5), (64, 2.0), (256, 8.0))


def run_cache_sweep(num_requests: int = 4_000, seed: int = 0,
                    rate_qps: float = 60_000.0) -> list:
    """p50/p95/p99 across cache hierarchies on one trace."""
    base = ServeConfig(requests=num_requests, seed=seed,
                       rate_qps=rate_qps, max_wait_s=0.001)
    rows = []
    for label, kind in CACHE_CONFIGS:
        report = serve(base.with_overrides(cache=kind))
        rows.append({"cache": label, **report.row()})
    return rows


def run_batcher_sweep(num_requests: int = 4_000, seed: int = 0,
                      rate_qps: float = 60_000.0) -> list:
    """Latency-throughput trade-off across batcher settings."""
    base = ServeConfig(requests=num_requests, seed=seed,
                       rate_qps=rate_qps)
    rows = []
    for max_batch, wait_ms in BATCHER_CONFIGS:
        report = serve(base.with_overrides(
            max_batch_size=max_batch, max_wait_s=wait_ms / 1e3))
        rows.append({"batch_max": max_batch, "wait_ms": wait_ms,
                     **report.row()})
    return rows


def run_serving_latency(num_requests: int = 4_000, seed: int = 0) -> list:
    """Both sweeps concatenated; the ``experiment`` CLI entry point."""
    cache_rows = [{"sweep": "cache", **row}
                  for row in run_cache_sweep(num_requests, seed)]
    batch_rows = [{"sweep": "batcher", **row}
                  for row in run_batcher_sweep(num_requests, seed)]
    # Uniform columns so format_table renders one coherent table.
    columns = ["sweep", "cache", "batch_max", "wait_ms"]
    merged = []
    for row in cache_rows + batch_rows:
        merged.append({column: row.get(column, "-")
                       for column in columns}
                      | {key: value for key, value in row.items()
                         if key not in columns})
    return merged


def paper_reference() -> str:
    """This study extends the paper; no published numbers exist."""
    return ("Extension study: the paper stops at training. Expected "
            "shape: p99 strictly ordered all-HBM < HBM->DRAM < "
            "DRAM-only on the same trace; larger batches raise "
            "latency but launch overhead per request falls.")
