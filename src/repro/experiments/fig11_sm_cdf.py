"""Fig. 11: CDF of SM utilization while training DLRM, four systems.

The paper samples SM utilization at 10 ms granularity over a whole
DLRM run: the baselines show a large CDF mass at low utilization
(bottleneck stalls), while PICASSO has barely any low-utilization area.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    BENCHMARK_BATCH_SIZES,
    benchmark_model,
    run_framework,
)
from repro.hardware import gn6e_cluster
from repro.sim.metrics import busy_timeline
from repro.sim.resource import ResourceKind

FRAMEWORKS = ("TF-PS", "PyTorch", "Horovod", "PICASSO")


def _gpu_busy_timeline(report, bucket: float):
    """Union GPU busy fraction per bucket (SM + HBM activity)."""
    result = report.result
    _times, busy = busy_timeline(
        result.recorder, (ResourceKind.GPU_SM, ResourceKind.HBM),
        result.makespan, bucket)
    return busy


def run_sm_cdf(iterations: int = 3, bucket: float = 0.010) -> dict:
    """Per-framework sorted utilization samples + CDF summary stats."""
    cluster = gn6e_cluster(1)
    model, _dataset = benchmark_model("DLRM")
    results = {}
    for framework in FRAMEWORKS:
        batch = BENCHMARK_BATCH_SIZES["DLRM"][framework]
        report = run_framework(framework, model, cluster, batch,
                               iterations=iterations)
        samples = _gpu_busy_timeline(report, bucket)
        levels = np.sort(samples)
        cdf = np.arange(1, len(levels) + 1) / max(1, len(levels))
        results[framework] = {
            "levels": levels,
            "cdf": cdf,
            "median_util": float(np.median(samples)) if samples.size
            else 0.0,
            "frac_below_20pct": float(np.mean(samples < 0.2))
            if samples.size else 1.0,
        }
    return results


def summary_rows(results: dict) -> list:
    """Flatten CDF stats for table printing."""
    return [
        {
            "framework": framework,
            "median_util_pct": round(stats["median_util"] * 100, 1),
            "time_below_20pct_util": round(
                stats["frac_below_20pct"] * 100, 1),
        }
        for framework, stats in results.items()
    ]


def paper_reference() -> dict:
    """Fig. 11's qualitative shape."""
    return {
        "claim": ("baselines show large CDF area at low SM utilization; "
                  "PICASSO has barely any low-utilization mass"),
    }
