"""Fig. 3: categorical-ID frequency distribution across datasets.

The paper samples five datasets and finds that, sorted by descending
frequency, the top 20% of IDs cover ~70% of the data on average and up
to 99% — the motivation for ``HybridHash``.
"""

from __future__ import annotations

import numpy as np

from repro.data import ALL_DATASETS
from repro.data.statistics import coverage_curve, coverage_of_top_fraction
from repro.data.synthetic import FieldSampler


def run_id_distribution(sample_batches: int = 4, batch_size: int = 20_000,
                        scale: float = 0.05, seed: int = 3) -> list:
    """Top-20% coverage per dataset, measured from sampled ID streams."""
    rows = []
    for name, dataset_fn in ALL_DATASETS.items():
        dataset = dataset_fn(scale)
        coverages = []
        # Sample the heaviest-traffic fields to keep runtime bounded.
        fields = sorted(dataset.fields,
                        key=lambda spec: -spec.seq_length)[:6]
        for spec in fields:
            sampler = FieldSampler(spec, seed=seed)
            ids = np.concatenate([
                sampler.sample_batch(batch_size)
                for _round in range(sample_batches)
            ])
            coverages.append(coverage_of_top_fraction(ids, 0.2))
        rows.append({
            "dataset": name,
            "top20_coverage_pct": round(float(np.mean(coverages)) * 100, 1),
            "max_field_coverage_pct": round(max(coverages) * 100, 1),
        })
    return rows


def run_coverage_curve(dataset_name: str = "Criteo", scale: float = 0.05,
                       batch_size: int = 50_000, seed: int = 3) -> tuple:
    """Full coverage curve (id fraction, data fraction) for one dataset."""
    dataset = ALL_DATASETS[dataset_name](scale)
    spec = max(dataset.fields, key=lambda item: item.vocab_size)
    sampler = FieldSampler(spec, seed=seed)
    ids = np.concatenate([sampler.sample_batch(batch_size)
                          for _round in range(4)])
    return coverage_curve(ids)


def paper_reference() -> dict:
    """Fig. 3's quantitative claim."""
    return {
        "claim": ("top 20% of IDs cover 70% of training data on average "
                  "and up to 99%"),
        "mean_band": (55.0, 99.5),
    }
