"""Differential-observability demo: attribute a knob's cost by diff.

Runs the training workload twice — default PICASSO against the same
config with ``interleave_sets=1`` (K-Interleaving collapsed to a
single set, so nothing pipelines across sets) — freezes both task
traces, and lets :func:`repro.telemetry.diff_traces` attribute the
makespan delta to op classes.  The table is the diff engine's ranked
report: instead of "the run got slower", it reads "these ops gained
this much on-path time, carrying this share of the regression".
"""

from __future__ import annotations

from repro.api import RunConfig, run, run_manifest
from repro.core import PicassoConfig
from repro.sim import FrozenTrace
from repro.telemetry import diff_traces

#: The bench-sized training workload both sides run.
WORKLOAD = dict(model="W&D", dataset="Product-1", scale=0.05,
                cluster="eflops:2", batch_size=4_000, iterations=2)


def _freeze(config: RunConfig) -> FrozenTrace:
    report = run(config)
    return FrozenTrace(
        records=tuple(report.result.task_records),
        makespan=report.result.makespan,
        metadata={"provenance": run_manifest(config, report.name,
                                             kind="trace")})


def run_diff_attribution(top_k: int = 6) -> list:
    """Rank what ``interleave_sets=1`` costs, op class by op class."""
    base_config = RunConfig(record_tasks=True, **WORKLOAD)
    knobbed = base_config.with_overrides(
        picasso=PicassoConfig(interleave_sets=1))
    base = _freeze(base_config)
    candidate = _freeze(knobbed)
    diff = diff_traces(base, candidate, top_k=top_k)
    rows = []
    for rank, entry in enumerate(diff.entries[:top_k], start=1):
        rows.append({
            "rank": rank,
            "op": entry.label,
            "path_delta_ms": f"{entry.path_delta * 1e3:+.3f}",
            "share": f"{entry.share:+.1%}",
            "exec_delta": f"{entry.exec_pct:+.1%}",
            "workers": ",".join(entry.workers) or "-",
        })
    rows.append({
        "rank": "-",
        "op": "makespan",
        "path_delta_ms": f"{diff.makespan_delta * 1e3:+.3f}",
        "share": "100.0%",
        "exec_delta": "-",
        "workers": f"aligned {diff.alignment['name']}"
                   f"+{diff.alignment['class']}",
    })
    return rows
