"""Fault-recovery study (ROADMAP extension, not a paper table): how
crash rate and checkpoint interval move training goodput.

Production PICASSO delegates failover to an in-house service the paper
scopes out; this experiment quantifies what that service buys.  Every
cell trains the *same* seeded model on the *same* batch stream under a
deterministic :meth:`~repro.faults.plan.FaultPlan.periodic` crash
schedule, varying only the crash rate and the
:class:`~repro.faults.resilient.ResilientTrainer` checkpoint interval:

* interval 0 (recovery off: every crash restarts from step 0) shows
  goodput collapsing as the crash rate rises;
* small intervals pay checkpoint-write overhead, large intervals pay
  lost work — the sweep exposes the trade-off;
* the ``trajectory`` column verifies the recovery guarantee: every
  run's loss history must match the crash-free reference *bitwise*.

All time is modeled, so the table is a pure function of the seeds.
"""

from __future__ import annotations

import tempfile

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.faults.plan import FaultPlan
from repro.faults.resilient import ResilientTrainer
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad
from repro.training.trainer import SyncTrainer

#: Crashes per modeled second across the sweep (0 = crash-free).
CRASH_RATES = (0.0, 0.04, 0.1)

#: Checkpoint intervals in steps (0 = recovery restarts from scratch).
CKPT_INTERVALS = (0, 1, 5, 25)


def _tiny_dataset() -> DatasetSpec:
    return DatasetSpec(
        name="FaultMini", num_numeric=4,
        fields=(FieldSpec(name="f0", vocab_size=400, embedding_dim=8),
                FieldSpec(name="f1", vocab_size=400, embedding_dim=8)))


def _fresh_trainer(seed: int) -> tuple:
    """(trainer, iterator) over identical state for every cell."""
    dataset = _tiny_dataset()
    network = WdlNetwork(dataset, variant="wdl", embedding_dim=8,
                         seed=seed)
    trainer = SyncTrainer(network, optimizer=Adagrad(lr=0.05))
    iterator = LabeledBatchIterator(dataset, 32, seed=seed)
    return trainer, iterator


def run_fault_recovery(steps: int = 50, step_time_s: float = 1.0,
                       ckpt_write_s: float = 0.02,
                       detect_s: float = 0.05, restore_s: float = 0.05,
                       seed: int = 0) -> list:
    """Goodput/MTTR over crash rate x checkpoint interval.

    Deterministic: periodic fault plans, one seed for model and data.
    """
    reference = None
    rows = []
    for crash_rate in CRASH_RATES:
        plan = FaultPlan.periodic(crash_rate=crash_rate,
                                  duration_s=steps * step_time_s)
        intervals = CKPT_INTERVALS if crash_rate > 0 else (0,)
        for interval in intervals:
            trainer, iterator = _fresh_trainer(seed)
            with tempfile.TemporaryDirectory() as ckpt_dir:
                resilient = ResilientTrainer(
                    trainer, ckpt_dir, ckpt_interval=interval,
                    step_time_s=step_time_s, ckpt_write_s=ckpt_write_s,
                    detect_s=detect_s, restore_s=restore_s)
                report = resilient.train(iterator, steps,
                                         fault_plan=plan)
            if reference is None:
                reference = list(report.losses)
            exact = (report.losses == reference
                     and report.replay_divergence == 0)
            rows.append({
                "crash_rate": f"{crash_rate:g}",
                "ckpt_interval": interval,
                "crashes": report.crashes,
                "goodput": f"{report.goodput:.3f}",
                "mttr_s": f"{report.mttr_s:.2f}",
                "lost_work_s": f"{report.lost_work_s:.2f}",
                "wall_s": f"{report.total_wall_s:.2f}",
                "trajectory": "exact" if exact else "DIVERGED",
            })
    return rows


def paper_reference() -> str:
    """This study extends the paper; no published numbers exist."""
    return ("Extension study: the paper leaves failover to an in-house "
            "service. Expected shape: with recovery off, goodput "
            "strictly degrades as crash rate rises; checkpointing "
            "recovers most of it, with an interval sweet spot between "
            "write overhead and lost work; every run replays the "
            "crash-free loss trajectory bitwise.")
