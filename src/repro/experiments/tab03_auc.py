"""Tab. III: AUC of trained models under four training systems.

The claim: PICASSO's synchronous hybrid strategy matches the AUC of
the synchronous baselines (PyTorch, Horovod) at much larger batch
sizes, while asynchronous TF-PS trails slightly (gradient staleness).

We train real numpy networks on laptop-scale stand-ins of Criteo
(DLRM, DeepFM) and Alibaba (DIN, DIEN).  "PICASSO", "PyTorch" and
"Horovod" share the synchronous trajectory (they are mathematically
identical up to batch size); TF-PS runs with stale gradients.
"""

from __future__ import annotations

from repro.experiments.common import mini_alibaba, mini_criteo
from repro.training import train_and_evaluate

#: Training batch sizes, scaled down from Tab. III proportionally.
_BATCHES = {
    "DLRM": {"PICASSO": 4096, "PyTorch": 1024, "TF-PS": 1024,
             "Horovod": 1024},
    "DeepFM": {"PICASSO": 4096, "PyTorch": 1024, "TF-PS": 1024,
               "Horovod": 1024},
    "DIN": {"PICASSO": 2048, "PyTorch": 1024, "TF-PS": 1024,
            "Horovod": 1024},
    "DIEN": {"PICASSO": 2048, "PyTorch": 1024, "TF-PS": 1024,
             "Horovod": 1024},
}

_VARIANTS = {"DLRM": "dlrm", "DeepFM": "deepfm", "DIN": "din",
             "DIEN": "dien"}

#: (noise, signal) scales tuned so the attainable AUC matches the
#: paper's bands (Criteo ~0.80, Alibaba ~0.63).
_NOISE = {"DLRM": (0.3, 1.75), "DeepFM": (0.3, 1.75),
          "DIN": (1.4, 1.0), "DIEN": (1.4, 1.0)}


def run_auc(steps: int = 150, eval_batches: int = 25,
            seed: int = 0) -> list:
    """Train each (model, system) pair and report held-out AUC."""
    rows = []
    for model_name, variant in _VARIANTS.items():
        if variant in ("din", "dien"):
            dataset = mini_alibaba()
        else:
            dataset = mini_criteo(vocab=8_000)
        noise, signal = _NOISE[model_name]
        for system in ("PICASSO", "PyTorch", "TF-PS", "Horovod"):
            batch = _BATCHES[model_name][system]
            mode = "async-ps" if system == "TF-PS" else "sync"
            result = train_and_evaluate(
                dataset, variant, mode=mode, steps=steps,
                batch_size=batch, eval_batches=eval_batches,
                noise_scale=noise, signal_scale=signal, staleness=2,
                seed=seed)
            rows.append({
                "model": model_name,
                "system": system,
                "batch": batch,
                "auc": round(result.auc, 4),
                "logloss": round(result.logloss, 4),
            })
    return rows


def paper_reference() -> list:
    """Tab. III as published (AUC, batch size per GPU)."""
    return [
        {"model": "DLRM", "PICASSO": (0.8025, 42_000),
         "PyTorch": (0.8025, 7_000), "TF-PS": (0.8024, 6_000),
         "Horovod": (0.8025, 10_000)},
        {"model": "DeepFM", "PICASSO": (0.8007, 30_000),
         "PyTorch": (0.8007, 7_000), "TF-PS": (0.8007, 7_000),
         "Horovod": (0.8007, 8_000)},
        {"model": "DIN", "PICASSO": (0.6331, 32_000),
         "PyTorch": (0.6329, 20_000), "TF-PS": (0.6327, 16_000),
         "Horovod": (0.6329, 24_000)},
        {"model": "DIEN", "PICASSO": (0.6345, 32_000),
         "PyTorch": (0.6344, 16_000), "TF-PS": (0.6340, 12_000),
         "Horovod": (0.6343, 24_000)},
    ]
