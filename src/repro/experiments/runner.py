"""Run every experiment and render a paper-vs-measured report.

``python -m repro.experiments.runner`` regenerates the full evaluation
(the EXPERIMENTS.md data); individual experiments are importable for
the benchmark suite.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    autotune,
    diff_attribution,
    fault_recovery,
    fig01_gpu_util,
    fig03_distribution,
    fig05_breakdown,
    fig10_walltime,
    fig11_sm_cdf,
    fig12_bandwidth,
    fig13_ips,
    fig14_interleaving,
    fig15_scaling,
    monitor_health,
    serving_latency,
    shard_placement,
    staleness_auc,
    tab03_auc,
    tab04_ablation,
    tab05_op_counts,
    tab06_hot_storage,
    tab07_twelve_models,
    tab08_feature_fields,
    tab09_production,
    tab10_model_scale,
)
from repro.experiments.common import format_table
from repro.telemetry.span import maybe_span


def _render(title: str, rows: list) -> str:
    if not rows:
        return f"== {title}: no rows =="
    columns = list(rows[0].keys())
    return f"== {title} ==\n{format_table(rows, columns)}"


#: (experiment id, callable) for every table and figure.
EXPERIMENTS = [
    ("Fig. 1 GPU utilization trend",
     lambda: fig01_gpu_util.run_gpu_util_trend()),
    ("Fig. 3 ID distribution",
     lambda: fig03_distribution.run_id_distribution()),
    ("Fig. 5 worker-side breakdown",
     lambda: fig05_breakdown.run_breakdown()),
    ("Tab. III AUC", lambda: tab03_auc.run_auc()),
    ("Fig. 10 walltime", lambda: fig10_walltime.run_walltime()),
    ("Fig. 11 SM-utilization CDF",
     lambda: fig11_sm_cdf.summary_rows(fig11_sm_cdf.run_sm_cdf())),
    ("Fig. 12 bandwidth", lambda: fig12_bandwidth.run_bandwidth()),
    ("Fig. 13 production IPS", lambda: fig13_ips.run_production_ips()),
    ("Tab. IV ablation", lambda: tab04_ablation.run_ablation()),
    ("Tab. V operation counts", lambda: tab05_op_counts.run_op_counts()),
    ("Fig. 14 interleaving groups",
     lambda: fig14_interleaving.run_interleave_groups()),
    ("Fig. 14 micro-batches",
     lambda: fig14_interleaving.run_micro_batches()),
    ("Tab. VI hot-storage sweep",
     lambda: tab06_hot_storage.run_hot_storage_sweep()),
    ("Fig. 15 scaling out", lambda: fig15_scaling.run_scaling()),
    ("Tab. VII twelve models",
     lambda: tab07_twelve_models.run_twelve_models()),
    ("Tab. VIII feature-field sweep",
     lambda: tab08_feature_fields.run_feature_field_sweep()),
    ("Tab. IX production summary",
     lambda: tab09_production.run_production_summary()),
    ("Tab. X model-scale walltime",
     lambda: tab10_model_scale.run_model_scale()),
    ("Serving latency-throughput",
     lambda: serving_latency.run_serving_latency()),
    ("Fault recovery goodput",
     lambda: fault_recovery.run_fault_recovery()),
    ("Shard placement skew sweep",
     lambda: shard_placement.run_shard_placement()),
    ("Staleness vs AUC (publish cadence)",
     lambda: staleness_auc.run_staleness_auc()),
    ("Auto-tuning strategy comparison",
     lambda: autotune.run_autotune()),
    ("Run-health monitors",
     lambda: monitor_health.run_monitor_health()),
    ("Overlap-ratio ablation",
     lambda: monitor_health.run_overlap_ablation()),
    ("Trace-diff attribution (interleave_sets=1)",
     lambda: diff_attribution.run_diff_attribution()),
]


def run_all(stream=None, tracer=None) -> dict:
    """Execute every experiment; returns {title: rows}.

    :param tracer: optional :class:`repro.telemetry.Tracer`; each
        experiment becomes a wall-clock span on the ``experiments``
        track, so a full evaluation run exports as one timeline.
    """
    stream = stream or sys.stdout
    results = {}
    for title, runner in EXPERIMENTS:
        start = time.time()
        with maybe_span(tracer, title, category="experiment",
                        track="experiments"):
            rows = runner()
        results[title] = rows
        print(_render(title, rows), file=stream)
        print(f"  [{time.time() - start:.1f}s]\n", file=stream)
    return results


if __name__ == "__main__":
    run_all()
