"""Shard-placement study (ROADMAP extension, not a paper table): how
much skew-aware placement rebalances the embedding AllToAllv.

PICASSO's hybrid strategy makes embeddings model-parallel, so the
slowest shard gates every exchange; under the Zipf skew of Fig. 3,
hash sharding concentrates the hottest IDs on a few workers.  Each
cell of the skew x workers sweep samples the *same* seeded bounded-
Zipf traffic per worker and prices it twice through
:func:`~repro.embedding.placement.compare_policies` — once under plain
hash ownership, once under the
:class:`~repro.embedding.placement.ShardPlanner`'s replicate/dedicate/
LPT placement — reporting the measured max/mean per-worker exchange
bytes of both and the planner's cut:

* ``hash_ratio`` grows with skew (hotter heads, fewer owners) and
  with worker count (more shards for the same head to unbalance);
* ``planned_ratio`` stays near 1.0: replication removes the head from
  the exchange entirely and LPT balances what remains;
* ``ratio_cut_pct`` is the headline number the ``shards`` bench gates
  (>= 25% on the Zipf(1.2) x 8-worker cell).

The table is a pure function of the seed.
"""

from __future__ import annotations

import numpy as np

from repro.data.spec import FieldSpec
from repro.data.synthetic import BoundedZipf
from repro.embedding.placement import ShardPlanner, compare_policies

#: Zipf exponents swept (Fig. 3's production skew sits near 1.2).
SKEWS = (1.05, 1.2, 1.4)

#: Worker counts swept (the acceptance cell is 8).
WORKER_COUNTS = (4, 8, 16)


def _field_specs(vocab_size: int, num_fields: int, dim: int,
                 skew: float) -> list:
    return [FieldSpec(name=f"f{index}", vocab_size=vocab_size,
                      embedding_dim=dim, zipf_exponent=skew)
            for index in range(num_fields)]


def run_shard_placement(vocab_size: int = 50_000, num_fields: int = 4,
                        dim: int = 16, per_worker_batch: int = 4_096,
                        seed: int = 0, skews=SKEWS,
                        worker_counts=WORKER_COUNTS) -> list:
    """The skew x workers x policy table; one row per swept cell."""
    rows = []
    for skew in skews:
        specs = _field_specs(vocab_size, num_fields, dim, skew)
        sampler = BoundedZipf(vocab_size=vocab_size, exponent=skew)
        for workers in worker_counts:
            planner = ShardPlanner(workers)
            profiles = planner.profiles_for_fields(
                specs, per_worker_batch)
            rng = np.random.default_rng(seed)
            batches = {
                spec.name: [sampler.sample(per_worker_batch, rng)
                            for _worker in range(workers)]
                for spec in specs
            }
            result = compare_policies(profiles, batches, workers)
            hash_load = result["hash"]
            planned_load = result["planned"]
            planned_plan = result["plans"]["planned"]
            hash_ratio = hash_load.max_mean_ratio
            planned_ratio = planned_load.max_mean_ratio
            rows.append({
                "skew": f"{skew:g}",
                "workers": workers,
                "hash_ratio": round(hash_ratio, 3),
                "planned_ratio": round(planned_ratio, 3),
                "ratio_cut_pct": round(
                    (1.0 - planned_ratio / hash_ratio) * 100, 1),
                "max_bytes_cut_pct": round(
                    (1.0 - planned_load.max_bytes
                     / hash_load.max_bytes) * 100, 1)
                if hash_load.max_bytes > 0 else 0.0,
                "replicated_rows": planned_plan.replicated_rows,
            })
    return rows
