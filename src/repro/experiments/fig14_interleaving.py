"""Fig. 14: throughput vs number of interleaving groups / micro-batches.

The communication-heavy models (W&D, CAN) benefit from more
K-Interleaving groups (uniformized resource usage); the
computation-heavy models (CAN, MMoE) benefit from more micro-batches
(GPU saturation), with diminishing or negative returns past the sweet
spot.
"""

from __future__ import annotations

from repro.core import PicassoConfig
from repro.experiments.common import (
    PRODUCTION_BATCH_SIZES,
    production_model,
    run_picasso,
)
from repro.hardware import eflops_cluster


def run_interleave_groups(group_counts: tuple = (1, 3, 5, 7, 9, 11),
                          iterations: int = 2,
                          num_nodes: int = 16) -> list:
    """IPS vs K-Interleaving set count for the production models."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for model_name in ("W&D", "CAN", "MMoE"):
        model, _dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        for count in group_counts:
            config = PicassoConfig(interleave_sets=count, micro_batches=3)
            report = run_picasso(model, cluster, batch, config=config,
                                 iterations=iterations)
            rows.append({
                "model": model_name,
                "interleave_groups": count,
                "ips": round(report.ips),
            })
    return rows


def run_micro_batches(micro_counts: tuple = (1, 2, 3, 4, 6, 8),
                      iterations: int = 2, num_nodes: int = 16) -> list:
    """IPS vs D-Interleaving micro-batch count."""
    cluster = eflops_cluster(num_nodes)
    rows = []
    for model_name in ("W&D", "CAN", "MMoE"):
        model, _dataset = production_model(model_name)
        batch = PRODUCTION_BATCH_SIZES[model_name]
        for count in micro_counts:
            config = PicassoConfig(micro_batches=count)
            report = run_picasso(model, cluster, batch, config=config,
                                 iterations=iterations)
            rows.append({
                "model": model_name,
                "micro_batches": count,
                "ips": round(report.ips),
            })
    return rows


def paper_reference() -> dict:
    """Fig. 14's qualitative claims."""
    return {
        "groups": ("W&D and CAN (communication-intensive) gain from "
                   "more interleaving groups; the models own 16/19/11 "
                   "packed embeddings"),
        "micro_batches": ("CAN and MMoE (computation-intensive) gain "
                          "from more micro-batches by saturating the "
                          "GPU"),
    }
