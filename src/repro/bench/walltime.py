"""Wall-clock throughput benchmark of the engine hot path.

Every other bench gates *modeled* quantities, which are deterministic
by construction.  This one exists to catch regressions in how fast the
simulator itself runs: the vectorized event loop, the plan/compile
caches, and the embedding batch path are all on the measured path, and
a change that silently falls back to the per-event Python loop shows
up as a ~10x wall-clock blowup long before any modeled metric moves.

Two consumers share one harness (:func:`measure_walltime`):

* the CI ``perf`` job injects the real ``time.perf_counter`` and
  asserts the median timed run against :data:`WALLTIME_BUDGET_S`
  (``repro bench walltime``), uploading the raw timings as an
  artifact;
* the snapshot suite (:func:`bench_walltime`, registered as the
  ``walltime`` bench) injects a deterministic tick clock, so the
  committed ``BENCH_walltime.json`` stays a pure function of the
  modeled run and byte-diffs cleanly in the determinism job.
"""

from __future__ import annotations

import gc
import time

from repro.api import RunConfig, run
from repro.bench.snapshot import BenchSnapshot

#: The gating workload: full-scale model, one iteration.  One step is
#: the engine-bound configuration — at higher iteration counts the
#: (cached) graph grows linearly while the hot path's per-event cost
#: stays put, so a single step maximizes the loop's share of the
#: measurement.
WALLTIME_WORKLOAD = dict(model="W&D", dataset="Product-1", scale=1.0,
                         cluster="eflops:2", batch_size=20_000,
                         iterations=1)

#: CI budget for the *median* timed run, in seconds.  The vectorized
#: engine completes this workload in ~5 ms warm on a dev box; the
#: pre-vectorization loop took ~50 ms.  0.25 s leaves ~50x headroom
#: for slow shared runners while still sitting well under what a
#: fallback to the per-event Python loop would cost there.
WALLTIME_BUDGET_S = 0.25

#: Timed-run protocol: the first ``WALLTIME_WARMUP`` runs are
#: discarded (they pay one-time planning/compile/model-cache fills),
#: then the median of ``WALLTIME_RUNS`` measured runs is the headline.
WALLTIME_RUNS = 3
WALLTIME_WARMUP = 1


class _TickClock:
    """Deterministic stand-in for ``time.perf_counter``.

    Advances one tick per call, so every timed interval measures
    exactly ``tick`` seconds regardless of host speed — which is what
    keeps the ``walltime`` snapshot byte-identical across machines.
    """

    def __init__(self, tick: float = 1.0):
        self.tick = tick
        self._now = 0.0

    def __call__(self) -> float:
        now = self._now
        self._now = now + self.tick
        return now


def measure_walltime(runs: int = WALLTIME_RUNS,
                     warmup: int = WALLTIME_WARMUP,
                     clock=time.perf_counter,
                     budget_s: float | None = None,
                     workload: dict | None = None) -> dict:
    """Time the gating workload end to end; returns the result record.

    Runs the workload ``warmup + runs`` times through the public
    :func:`repro.api.run` facade, timing each run with ``clock`` and
    discarding the warm-up runs (they populate the plan/compile/model
    caches — steady-state CI traffic is warm).  The record carries the
    raw per-run seconds, their median, the derived items/second, and —
    when ``budget_s`` is given — the budget verdict.  Callers gate by
    checking ``within_budget``; the function itself never raises on a
    slow run so the timings still reach the CI artifact.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    config = RunConfig(**(workload or WALLTIME_WORKLOAD))
    report = None
    warmup_s = []
    timed_s = []
    # Collector pauses are the dominant run-to-run noise at this
    # workload's size (a run allocates ~100k short-lived tuples), so
    # the timed section runs with GC paused — the standard
    # microbenchmark protocol (pytest-benchmark does the same).
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for index in range(warmup + runs):
            start = clock()
            report = run(config)
            elapsed = clock() - start
            (warmup_s if index < warmup else timed_s).append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    ordered = sorted(timed_s)
    median_s = ordered[len(ordered) // 2]
    items = config.batch_size * config.iterations
    record = {
        "workload": dict(workload or WALLTIME_WORKLOAD),
        "warmup_s": warmup_s,
        "runs_s": timed_s,
        "median_s": median_s,
        "items_per_s": items / median_s if median_s > 0 else 0.0,
        "modeled_makespan_s": report.result.makespan,
        "modeled_ips": report.ips,
        "task_count": report.result.summary().task_count,
        "event_count": report.result.summary().event_count,
    }
    if budget_s is not None:
        record["budget_s"] = budget_s
        record["within_budget"] = median_s <= budget_s
    return record


def bench_walltime() -> BenchSnapshot:
    """The ``walltime`` snapshot: the harness under a modeled clock.

    Exercises the exact measurement path the perf job times, but with
    the deterministic tick clock injected, so the snapshot's metrics
    are a pure function of the modeled run: the workload's structure
    (task/event counts, modeled throughput) gates at tolerance 0, and
    the clock-derived fields pin the harness protocol itself (3 timed
    runs, 1 discarded warm-up, median picked correctly).
    """
    record = measure_walltime(clock=_TickClock())
    config = dict(WALLTIME_WORKLOAD, runs=WALLTIME_RUNS,
                  warmup=WALLTIME_WARMUP)
    metrics = {
        "task_count": record["task_count"],
        "event_count": record["event_count"],
        "modeled_makespan_s": record["modeled_makespan_s"],
        "modeled_ips": record["modeled_ips"],
        "timed_runs": len(record["runs_s"]),
        "warmup_runs": len(record["warmup_s"]),
        "tick_median_s": record["median_s"],
    }
    tolerances = {
        "task_count": 0.0,
        "event_count": 0.0,
        "modeled_makespan_s": 0.0,
        "modeled_ips": 0.0,
        "timed_runs": 0.0,
        "warmup_runs": 0.0,
        "tick_median_s": 0.0,
    }
    return BenchSnapshot(
        name="walltime",
        config=config,
        metrics=metrics,
        monitors={"harness": {
            "budget_s": WALLTIME_BUDGET_S,
            "clock": "modeled-tick",
        }},
        tolerances=tolerances)
