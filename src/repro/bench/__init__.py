"""Regression-gated benchmark snapshots (``repro bench``).

``repro.bench`` turns runs into committed ``BENCH_<name>.json``
baselines and gates candidates against them: :mod:`~repro.bench.suite`
defines the deterministic CI-sized workloads,
:mod:`~repro.bench.snapshot` the byte-stable snapshot format and the
per-metric tolerance comparison the CLI exits non-zero on.
"""

from repro.bench.snapshot import (
    DEFAULT_TOLERANCE,
    SCHEMA_VERSION,
    BenchSnapshot,
    GateReport,
    MetricGate,
    canonical_json,
    compare_snapshots,
    config_fingerprint,
    load_snapshot,
    snapshot_filename,
    write_snapshot,
)
from repro.bench.suite import BENCHES, run_benches

__all__ = [
    "BENCHES",
    "BenchSnapshot",
    "DEFAULT_TOLERANCE",
    "GateReport",
    "MetricGate",
    "SCHEMA_VERSION",
    "canonical_json",
    "compare_snapshots",
    "config_fingerprint",
    "load_snapshot",
    "run_benches",
    "snapshot_filename",
    "write_snapshot",
]
