"""Schema-versioned benchmark snapshots + per-metric regression gates.

A :class:`BenchSnapshot` freezes one benchmark's headline numbers —
flat metrics, monitor summaries, the exact config it ran under — into
a ``BENCH_<name>.json`` file whose bytes are a pure function of the
run (sorted keys, fixed separators, no timestamps).  CI commits the
snapshots as baselines; :func:`compare_snapshots` diffs a candidate
against its baseline metric by metric, each with its own relative
tolerance, and the resulting :class:`GateReport` is what the
``repro bench`` CLI renders and exits non-zero on.

The config fingerprint guards against silent workload drift: a gate
only means something if baseline and candidate measured the same
thing, so a changed config fails the gate outright rather than
producing an apples-to-oranges "pass".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

#: Bump when the snapshot layout changes incompatibly.
SCHEMA_VERSION = 1

#: Gate tolerance applied to metrics without an explicit one (5%).
DEFAULT_TOLERANCE = 0.05


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, newline EOF."""
    return json.dumps(payload, sort_keys=True, indent=1,
                      separators=(",", ": ")) + "\n"


def config_fingerprint(config: dict) -> str:
    """Short stable hash of a config dict (workload identity)."""
    compact = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(compact.encode("utf-8")).hexdigest()[:16]


def snapshot_filename(name: str) -> str:
    """``BENCH_<name>.json`` for a benchmark called ``name``."""
    return f"BENCH_{name}.json"


@dataclass(frozen=True)
class BenchSnapshot:
    """One benchmark's frozen results.

    :param metrics: flat ``{metric: number}`` — the gated surface.
    :param monitors: ``{monitor: summary dict}`` from
        :class:`~repro.telemetry.MonitorReport` summaries (recorded for
        inspection; gated only via metrics that mirror them).
    :param tolerances: per-metric relative tolerance overrides; metrics
        absent here gate at :data:`DEFAULT_TOLERANCE`.  A tolerance of
        0 demands exact equality (use for counts).
    :param provenance: run-manifest dict (see
        :func:`repro.telemetry.provenance.build_manifest`) recording
        which code produced the snapshot; informational — the gate
        compares only metrics and the config fingerprint.
    """

    name: str
    config: dict
    metrics: dict
    monitors: dict = field(default_factory=dict)
    tolerances: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    provenance: dict = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return config_fingerprint(self.config)

    def tolerance_for(self, metric: str) -> float:
        return float(self.tolerances.get(metric, DEFAULT_TOLERANCE))

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "config": self.config,
            "config_fingerprint": self.fingerprint,
            "metrics": self.metrics,
            "monitors": self.monitors,
            "tolerances": self.tolerances,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchSnapshot":
        return cls(
            name=payload["name"],
            config=payload["config"],
            metrics=payload["metrics"],
            monitors=payload.get("monitors", {}),
            tolerances=payload.get("tolerances", {}),
            schema_version=payload.get("schema_version", SCHEMA_VERSION),
            provenance=payload.get("provenance", {}))


def write_snapshot(snapshot: BenchSnapshot, directory: str) -> str:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path.

    Byte-deterministic: two snapshots of identical runs are identical
    files.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, snapshot_filename(snapshot.name))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(snapshot.as_dict()))
    return path


def load_snapshot(path: str) -> BenchSnapshot:
    """Read a snapshot back; raises on schema-version mismatch."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: snapshot schema v{version} != "
            f"supported v{SCHEMA_VERSION}; regenerate the baseline")
    return BenchSnapshot.from_dict(payload)


@dataclass(frozen=True)
class MetricGate:
    """One metric's baseline-vs-candidate verdict."""

    metric: str
    baseline: float | None
    current: float | None
    rel_delta: float
    tolerance: float
    status: str  # "ok" | "fail" | "new" | "missing"

    @property
    def failed(self) -> bool:
        return self.status in ("fail", "missing")

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel_delta": self.rel_delta,
            "tolerance": self.tolerance,
            "status": self.status,
        }


@dataclass(frozen=True)
class GateReport:
    """Per-metric comparison of one benchmark against its baseline."""

    name: str
    gates: tuple
    fingerprint_match: bool

    @property
    def passed(self) -> bool:
        return self.fingerprint_match \
            and not any(gate.failed for gate in self.gates)

    @property
    def failures(self) -> list:
        return [gate for gate in self.gates if gate.failed]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "fingerprint_match": self.fingerprint_match,
            "gates": [gate.as_dict() for gate in self.gates],
        }

    def format(self) -> str:
        """Readable per-metric report (what the CLI prints)."""
        lines = [f"bench {self.name}: "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        if not self.fingerprint_match:
            lines.append("  config fingerprint mismatch: baseline and "
                         "candidate ran different workloads")
        header = (f"  {'metric':<28} {'baseline':>14} {'current':>14} "
                  f"{'delta':>9} {'tol':>7}  status")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for gate in self.gates:
            baseline = ("-" if gate.baseline is None
                        else f"{gate.baseline:.6g}")
            current = ("-" if gate.current is None
                       else f"{gate.current:.6g}")
            delta = ("-" if gate.rel_delta != gate.rel_delta  # NaN
                     else f"{gate.rel_delta:+.2%}")
            lines.append(
                f"  {gate.metric:<28} {baseline:>14} {current:>14} "
                f"{delta:>9} {gate.tolerance:>6.1%}  {gate.status}")
        return "\n".join(lines)


def _relative_delta(baseline: float, current: float) -> float:
    """Signed relative change, safe around a zero baseline."""
    if baseline == current:
        return 0.0
    denominator = max(abs(baseline), 1e-12)
    return (current - baseline) / denominator


def compare_snapshots(baseline: BenchSnapshot,
                      candidate: BenchSnapshot) -> GateReport:
    """Gate ``candidate`` against ``baseline``, metric by metric.

    Baseline metrics missing from the candidate fail (``missing``);
    candidate metrics absent from the baseline are reported as ``new``
    without failing (the baseline update will absorb them).
    """
    gates = []
    for metric in sorted(baseline.metrics):
        tolerance = baseline.tolerance_for(metric)
        base_value = float(baseline.metrics[metric])
        if metric not in candidate.metrics:
            gates.append(MetricGate(
                metric=metric, baseline=base_value, current=None,
                rel_delta=float("nan"), tolerance=tolerance,
                status="missing"))
            continue
        current = float(candidate.metrics[metric])
        delta = _relative_delta(base_value, current)
        status = "ok" if abs(delta) <= tolerance else "fail"
        gates.append(MetricGate(
            metric=metric, baseline=base_value, current=current,
            rel_delta=delta, tolerance=tolerance, status=status))
    for metric in sorted(candidate.metrics):
        if metric in baseline.metrics:
            continue
        gates.append(MetricGate(
            metric=metric, baseline=None,
            current=float(candidate.metrics[metric]),
            rel_delta=float("nan"),
            tolerance=baseline.tolerance_for(metric), status="new"))
    return GateReport(
        name=baseline.name,
        gates=tuple(gates),
        fingerprint_match=baseline.fingerprint == candidate.fingerprint)
