"""The built-in benchmark suite behind ``repro bench``.

Each benchmark is one deterministic, CI-sized workload reduced to a
:class:`~repro.bench.snapshot.BenchSnapshot`:

* ``training`` — a profiled PICASSO W&D run: throughput, utilization,
  critical-path coverage, pulse-phase structure;
* ``interleaving`` — the same workload with K-Interleaving on vs off:
  the comm/compute overlap ratios and their gap (Eq. 3's win, gated so
  a scheduler regression that stops hiding communication fails CI);
* ``serving`` — the end-to-end serving simulation: latency
  percentiles, QPS, shed rate, SLO burn rate;
* ``cache`` — HybridHash over a bounded-Zipf stream: hit ratio, EWMA
  level, flush effectiveness (Algorithm 1's health);
* ``faults`` — the fault-recovery sweep plus degraded-mode serving:
  recovery overhead (goodput ratio vs crash-free, MTTR, replay
  divergence) and replica-loss admission behaviour, gated so a
  regression in the recovery path fails CI;
* ``shards`` — skew-aware shard placement vs hash sharding on the
  acceptance workload (Zipf(1.2), 8 workers): measured max/mean
  per-worker AllToAllv bytes under both policies and the planner's
  ratio cut, gated so a placement regression that re-skews the
  exchange (or drops the cut below 25%) fails CI;
* ``online`` — the continuous train->publish->swap->serve loop under a
  flash crowd, against a no-swap replay of the same trace: goodput,
  swap-pause p99, model staleness and delta compression, gated so a
  swap that starts dropping requests (or a delta format that bloats
  past 1/5th of a full checkpoint) fails CI;
* ``replay`` — the what-if loop on the training workload: unperturbed
  replay must reproduce the engine makespan *exactly* (tolerance 0),
  a launch-halved perturbation must land where it lands, and the
  coordinate-descent auto-tuner must keep finding a >= 10% winner with
  <= 15% prediction error on it, gated so a replay or predictor
  regression fails CI;
* ``prefetch`` — the hot/cold lookahead pipeline on a skewed stream
  with periodic cold scans: the ``fifo`` policy must stay the identity
  schedule and hot-first reordering must keep cutting exposed fetch
  seconds by >= 50% versus FIFO, gated so a scheduler regression that
  stops hiding cold fetches fails CI;
* ``walltime`` — the wall-clock harness (:mod:`repro.bench.walltime`)
  under a deterministic modeled clock: the full-scale single-step
  workload's structure (task/event counts, modeled throughput) and the
  timed-run protocol itself, gated at tolerance 0 so the snapshot
  byte-diffs in the determinism job; the CI ``perf`` job reruns the
  same harness with the real clock and asserts the wall budget.

Workloads are deliberately small (seconds each): the gate's job is
catching regressions on every PR, not measuring peak numbers.
"""

from __future__ import annotations

from dataclasses import replace as _replace

import numpy as np

from repro.api import RunConfig, ServeConfig, StreamConfig, \
    TuneConfig, profile, run, serve, stream, tune
from repro.bench.snapshot import BenchSnapshot
from repro.bench.walltime import bench_walltime
from repro.core import PicassoConfig
from repro.data import BoundedZipf
from repro.data.spec import FieldSpec
from repro.embedding.hybrid_hash import HybridHash
from repro.embedding.placement import ShardPlanner, compare_policies
from repro.embedding.table import EmbeddingTable
from repro.experiments.fault_recovery import run_fault_recovery
from repro.faults import FaultPlan
from repro.serving.metrics import ServingMetrics
from repro.serving.server import simulate_serving
from repro.serving.traffic import FlashCrowdShape
from repro.telemetry import (
    CacheHealthMonitor,
    SkewMonitor,
    SloBurnRateMonitor,
)

#: The tiny-but-representative training workload the gates run on.
_TRAIN_CONFIG = dict(model="W&D", dataset="Product-1", scale=0.05,
                     cluster="eflops:2", batch_size=4_000, iterations=2)

#: The interleaving comparison needs >1 worker per set to pipeline.
_INTERLEAVE_CONFIG = dict(model="W&D", dataset="Product-1", scale=0.05,
                          cluster="eflops:4", batch_size=8_000,
                          iterations=2)


#: The training gate's prefetch knobs: every upcoming batch counts as
#: hot (threshold 1.0 against the HBM-deferral residency model) with a
#: 4-deep window, which is the standard scenario the overlap
#: acceptance bar (>= 0.35 comm/compute overlap at 16 steady-state
#: iterations) was set on.
_TRAIN_PREFETCH = dict(prefetch_lookahead=4, prefetch_hot_threshold=1.0)


def bench_training() -> BenchSnapshot:
    """Profiled PICASSO run: throughput + health-monitor structure.

    Runs the training workload with the hot/cold prefetch pipeline on
    (16 iterations so the steady state dominates warm-up) and gates
    both the classic health structure and the prefetch account: the
    comm/compute overlap ratio must hold the >= 0.35 acceptance bar
    and the background stream must stay fully hidden (zero exposed
    fetch seconds).
    """
    workload = dict(_TRAIN_CONFIG, iterations=16)
    config = RunConfig(picasso=PicassoConfig(**_TRAIN_PREFETCH),
                       **workload)
    result = profile(config)
    report = result.report
    pulse = result.monitors["pulse"].summary
    overlap = result.monitors["overlap"].summary
    prefetch = result.monitors["prefetch"].summary
    metrics = {
        "ips": report.ips,
        "seconds_per_iteration": report.seconds_per_iteration,
        "sm_utilization": report.sm_utilization,
        "makespan_s": report.result.makespan,
        "task_count": report.result.summary().task_count,
        "critical_path_coverage": result.critical_path.coverage(10),
        "pulse_phases": pulse["num_phases"],
        "pulse_idle_fraction": pulse["idle_fraction"],
        "overlap_ratio": overlap["overlap_ratio"],
        "overlap_alerts": len(result.monitors["overlap"].alerts),
        "prefetch_seconds": prefetch["prefetch_seconds"],
        "prefetch_exposed_s": prefetch["exposed_fetch_seconds"],
        "prefetch_overlap_ratio": prefetch["overlap_ratio"],
        "prefetch_alerts": len(result.monitors["prefetch"].alerts),
    }
    tolerances = {
        "task_count": 0.0,
        "overlap_alerts": 0.0,
        "prefetch_alerts": 0.0,
        "prefetch_exposed_s": 0.0,
        "pulse_phases": 0.0,
        "pulse_idle_fraction": 0.10,
        "overlap_ratio": 0.10,
        "prefetch_seconds": 0.05,
        "prefetch_overlap_ratio": 0.05,
        "critical_path_coverage": 0.02,
    }
    return BenchSnapshot(
        name="training",
        config=dict(workload, **_TRAIN_PREFETCH),
        metrics=metrics,
        monitors={"pulse": pulse, "overlap": overlap,
                  "prefetch": prefetch},
        tolerances=tolerances)


def bench_interleaving() -> BenchSnapshot:
    """K-Interleaving on vs off: overlap ratios and their gap."""
    results = {}
    for label, picasso in (("on", PicassoConfig()),
                           ("off", PicassoConfig().without("interleaving"))):
        config = RunConfig(picasso=picasso, **_INTERLEAVE_CONFIG)
        results[label] = profile(config)
    overlap_on = results["on"].monitors["overlap"].summary
    overlap_off = results["off"].monitors["overlap"].summary
    metrics = {
        "overlap_ratio_on": overlap_on["overlap_ratio"],
        "overlap_ratio_off": overlap_off["overlap_ratio"],
        "overlap_gain": (overlap_on["overlap_ratio"]
                         - overlap_off["overlap_ratio"]),
        "overlapped_seconds_on": overlap_on["overlapped_seconds"],
        "ips_on": results["on"].report.ips,
        "ips_off": results["off"].report.ips,
        "overlap_alerts_on": len(
            results["on"].monitors["overlap"].alerts),
        "overlap_alerts_off": len(
            results["off"].monitors["overlap"].alerts),
    }
    tolerances = {
        "overlap_alerts_on": 0.0,
        "overlap_alerts_off": 0.0,
        "overlap_ratio_on": 0.10,
        "overlap_ratio_off": 0.10,
        "overlap_gain": 0.10,
        "overlapped_seconds_on": 0.10,
    }
    return BenchSnapshot(
        name="interleaving",
        config=dict(_INTERLEAVE_CONFIG),
        metrics=metrics,
        monitors={"overlap_on": overlap_on, "overlap_off": overlap_off},
        tolerances=tolerances)


def bench_serving() -> BenchSnapshot:
    """End-to-end serving run: percentiles, QPS and SLO burn rate."""
    config = dict(num_requests=2_000, seed=0, rate_qps=20_000.0,
                  cache="hbm-dram", slo_ms=20.0)
    metrics_sink = ServingMetrics()
    report = simulate_serving(
        num_requests=config["num_requests"], seed=config["seed"],
        rate_qps=config["rate_qps"], cache=config["cache"],
        slo_s=config["slo_ms"] * 1e-3, metrics=metrics_sink)
    monitor = SloBurnRateMonitor(slo_ms=config["slo_ms"])
    slo = monitor.analyze(metrics_sink)
    metrics = {
        "served": report.served,
        "shed": report.shed,
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "p99_ms": report.p99_ms,
        "qps": report.qps,
        "shed_rate": report.shed_rate,
        "cache_hit_ratio": report.cache_hit_ratio,
        "slo_burn_rate": slo.summary["overall_burn_rate"],
        "slo_violations": slo.summary["violations"],
    }
    tolerances = {
        "served": 0.0,
        "shed": 0.0,
        "slo_violations": 0.0,
        "p50_ms": 0.05,
        "p95_ms": 0.05,
        "p99_ms": 0.05,
        "cache_hit_ratio": 0.02,
    }
    return BenchSnapshot(
        name="serving",
        config=config,
        metrics=metrics,
        monitors={"slo": slo.summary},
        tolerances=tolerances)


def bench_cache() -> BenchSnapshot:
    """HybridHash over a bounded-Zipf stream: Algorithm 1's health."""
    config = dict(vocab_size=50_000, exponent=1.2, batch_size=512,
                  iterations=120, hot_rows=2_000, warmup_iters=20,
                  flush_iters=25, dim=8, seed=0)
    table = EmbeddingTable(dim=config["dim"], seed=config["seed"])
    cache = HybridHash(
        table, hot_bytes=config["hot_rows"] * config["dim"] * 4,
        warmup_iters=config["warmup_iters"],
        flush_iters=config["flush_iters"])
    sampler = BoundedZipf(vocab_size=config["vocab_size"],
                          exponent=config["exponent"])
    rng = np.random.default_rng(config["seed"])
    for _ in range(config["iterations"]):
        cache.lookup(sampler.sample(config["batch_size"], rng))
    monitor = CacheHealthMonitor()
    health = monitor.analyze(cache)
    metrics = {
        "hit_ratio": cache.stats.hit_ratio,
        "queries": cache.stats.queries,
        "flushes": cache.stats.flushes,
        "ewma_hit_ratio": health.summary["ewma_hit_ratio"],
        "mean_flush_effect": health.summary["mean_flush_effect"],
        "min_hit_ratio": health.summary["min_hit_ratio"],
    }
    tolerances = {
        "queries": 0.0,
        "flushes": 0.0,
        "hit_ratio": 0.02,
        "ewma_hit_ratio": 0.02,
        "mean_flush_effect": 0.25,
        "min_hit_ratio": 0.05,
    }
    return BenchSnapshot(
        name="cache",
        config=config,
        metrics=metrics,
        monitors={"cache": health.summary},
        tolerances=tolerances)


def bench_faults() -> BenchSnapshot:
    """Recovery overhead + degraded-mode serving, gated.

    The training half reruns the ``fault_recovery`` sweep at bench
    scale and gates the recovery economics: the best checkpoint
    interval must keep goodput near the crash-free run, MTTR must stay
    put, and replayed steps must never diverge.  The serving half
    pushes a trace through replica crashes and gates the degraded-mode
    accounting (no outage: everything is either served or shed by
    admission control).
    """
    config = dict(steps=30, step_time_s=1.0, ckpt_write_s=0.02,
                  detect_s=0.05, restore_s=0.05, seed=0,
                  serve_requests=1_500, serve_rate_qps=20_000.0,
                  serve_replicas=3, serve_crash_rate=40.0,
                  serve_crash_downtime_s=0.02)
    rows = run_fault_recovery(
        steps=config["steps"], step_time_s=config["step_time_s"],
        ckpt_write_s=config["ckpt_write_s"],
        detect_s=config["detect_s"], restore_s=config["restore_s"],
        seed=config["seed"])
    cells = {(row["crash_rate"], row["ckpt_interval"]): row
             for row in rows}
    crash_free = float(cells[("0", 0)]["goodput"])
    crashed = [row for row in rows
               if row["crash_rate"] == "0.1" and row["ckpt_interval"]]
    best = max(crashed, key=lambda row: float(row["goodput"]))
    diverged = sum(1 for row in rows if row["trajectory"] != "exact")

    trace_s = config["serve_requests"] / config["serve_rate_qps"]
    plan = FaultPlan.periodic(
        crash_rate=config["serve_crash_rate"], duration_s=trace_s,
        crash_downtime_s=config["serve_crash_downtime_s"],
        workers=config["serve_replicas"])
    report = serve(ServeConfig(
        requests=config["serve_requests"],
        rate_qps=config["serve_rate_qps"],
        replicas=config["serve_replicas"], fault_plan=plan))
    degraded = report.degraded or {}
    metrics = {
        "crash_free_goodput": crash_free,
        "recovery_off_goodput": float(cells[("0.1", 0)]["goodput"]),
        "best_goodput": float(best["goodput"]),
        "best_recovery_ratio": float(best["goodput"]) / crash_free,
        "best_mttr_s": float(best["mttr_s"]),
        "best_ckpt_interval": best["ckpt_interval"],
        "replay_divergence": diverged,
        "crashes": int(cells[("0.1", 0)]["crashes"]),
        "degraded_served": report.served,
        "degraded_shed": report.shed,
        "degraded_seconds": degraded.get("degraded_seconds", 0.0),
        "degraded_batches": degraded.get("degraded_batches", 0),
        "tightened_shed": degraded.get("tightened_shed", 0),
        "min_live_replicas": degraded.get("min_live_replicas", 0),
    }
    tolerances = {
        "replay_divergence": 0.0,
        "crashes": 0.0,
        "best_ckpt_interval": 0.0,
        "degraded_served": 0.0,
        "degraded_shed": 0.0,
        "degraded_batches": 0.0,
        "tightened_shed": 0.0,
        "min_live_replicas": 0.0,
        "crash_free_goodput": 0.01,
        "recovery_off_goodput": 0.01,
        "best_goodput": 0.01,
        "best_recovery_ratio": 0.01,
        "best_mttr_s": 0.02,
        "degraded_seconds": 0.01,
    }
    return BenchSnapshot(
        name="faults",
        config=config,
        metrics=metrics,
        monitors={"degraded": degraded},
        tolerances=tolerances)


def bench_shards() -> BenchSnapshot:
    """Skew-aware placement vs hash sharding on the acceptance cell.

    Prices identical seeded Zipf(1.2) traffic through both policies on
    8 workers.  The gate holds the planner to its contract: the
    measured max/mean shard-bytes cut must stay >= 25% (the ISSUE 5
    acceptance bar), replication/dedication structure must stay put,
    and the hash baseline itself must stay reproducible.
    """
    config = dict(vocab_size=50_000, exponent=1.2, num_fields=4,
                  dim=16, per_worker_batch=4_096, workers=8, seed=0)
    specs = [FieldSpec(name=f"f{index}",
                       vocab_size=config["vocab_size"],
                       embedding_dim=config["dim"],
                       zipf_exponent=config["exponent"])
             for index in range(config["num_fields"])]
    workers = config["workers"]
    planner = ShardPlanner(workers)
    profiles = planner.profiles_for_fields(
        specs, config["per_worker_batch"])
    sampler = BoundedZipf(vocab_size=config["vocab_size"],
                          exponent=config["exponent"])
    rng = np.random.default_rng(config["seed"])
    batches = {
        spec.name: [sampler.sample(config["per_worker_batch"], rng)
                    for _worker in range(workers)]
        for spec in specs
    }
    result = compare_policies(profiles, batches, workers)
    hash_load, planned_load = result["hash"], result["planned"]
    planned_plan = result["plans"]["planned"]
    monitor = SkewMonitor(max_ratio=1.5)
    skew_hash = monitor.analyze(hash_load)
    skew_planned = monitor.analyze(planned_load)
    ratio_cut = (1.0 - planned_load.max_mean_ratio
                 / hash_load.max_mean_ratio)
    metrics = {
        "hash_ratio": hash_load.max_mean_ratio,
        "planned_ratio": planned_load.max_mean_ratio,
        "ratio_cut": ratio_cut,
        "hash_max_bytes": hash_load.max_bytes,
        "planned_max_bytes": planned_load.max_bytes,
        "max_bytes_cut": (1.0 - planned_load.max_bytes
                          / hash_load.max_bytes),
        "replicated_rows": planned_plan.replicated_rows,
        "dedicated_rows": sum(
            entry.dedicated_ids.size
            for entry in planned_plan.fields.values()),
        "replicated_bytes": planned_load.replicated_bytes,
        "predicted_ratio_planned": planned_plan.predicted_ratio(),
        "hash_skew_alerts": len(skew_hash.alerts),
        "planned_skew_alerts": len(skew_planned.alerts),
    }
    tolerances = {
        "replicated_rows": 0.0,
        "dedicated_rows": 0.0,
        "hash_skew_alerts": 0.0,
        "planned_skew_alerts": 0.0,
        "hash_ratio": 0.02,
        "planned_ratio": 0.02,
        "ratio_cut": 0.05,
        "hash_max_bytes": 0.02,
        "planned_max_bytes": 0.02,
        "max_bytes_cut": 0.02,
        "replicated_bytes": 0.02,
        "predicted_ratio_planned": 0.02,
    }
    return BenchSnapshot(
        name="shards",
        config=config,
        metrics=metrics,
        monitors={"skew_hash": skew_hash.summary,
                  "skew_planned": skew_planned.summary},
        tolerances=tolerances)


def bench_online() -> BenchSnapshot:
    """The continuous loop under a flash crowd, vs a no-swap replay.

    One trace, two runs: hot swaps on (the product) and hot swaps off
    (the control serving frozen initial weights).  The gate holds the
    loop to its contract: zero swap-attributed sheds, served p99
    within 10% of the no-swap run, and delta snapshots at least 5x
    smaller than a full checkpoint.
    """
    config = dict(requests=2_000, seed=0, rate_qps=20_000.0,
                  flash_start_s=0.02, flash_duration_s=0.03,
                  flash_multiplier=3.0, train_steps=120,
                  train_step_ms=1.0, train_batch=128,
                  publish_interval=10, drift_ids_per_step=8.0,
                  slo_ms=20.0, max_replicas=4)
    base = StreamConfig(
        requests=config["requests"], seed=config["seed"],
        rate_qps=config["rate_qps"],
        shape=FlashCrowdShape(start_s=config["flash_start_s"],
                              duration_s=config["flash_duration_s"],
                              multiplier=config["flash_multiplier"]),
        train_steps=config["train_steps"],
        train_step_s=config["train_step_ms"] * 1e-3,
        train_batch_size=config["train_batch"],
        publish_interval=config["publish_interval"],
        drift_ids_per_step=config["drift_ids_per_step"],
        slo_s=config["slo_ms"] * 1e-3,
        max_replicas=config["max_replicas"])
    swapped = stream(base)
    frozen = stream(base.with_overrides(hot_swaps=False))
    p99_ratio = (swapped.serving.p99_ms / frozen.serving.p99_ms
                 if frozen.serving.p99_ms > 0 else 1.0)
    metrics = {
        "served": swapped.serving.served,
        "shed": swapped.serving.shed,
        "goodput_qps": swapped.goodput_qps,
        "p99_ms": swapped.serving.p99_ms,
        "p99_ms_noswap": frozen.serving.p99_ms,
        "p99_swap_ratio": p99_ratio,
        "publishes": swapped.publishes,
        "swaps": swapped.swaps,
        "swap_pause_p99_ms": swapped.swap_pause_p99_ms,
        "swap_attributed_shed": swapped.swap_attributed_shed,
        "staleness_mean_s": swapped.staleness_mean_s,
        "staleness_max_s": swapped.staleness_max_s,
        "delta_compression": swapped.delta_compression,
        "full_snapshot_bytes": swapped.full_snapshot_bytes,
    }
    tolerances = {
        "served": 0.0,
        "shed": 0.0,
        "publishes": 0.0,
        "swaps": 0.0,
        "swap_attributed_shed": 0.0,
        "full_snapshot_bytes": 0.0,
        "goodput_qps": 0.05,
        "p99_ms": 0.05,
        "p99_ms_noswap": 0.05,
        "p99_swap_ratio": 0.05,
        "swap_pause_p99_ms": 0.05,
        "staleness_mean_s": 0.05,
        "staleness_max_s": 0.05,
        "delta_compression": 0.05,
    }
    return BenchSnapshot(
        name="online",
        config=config,
        metrics=metrics,
        monitors=dict(swapped.controls),
        tolerances=tolerances)


def bench_replay() -> BenchSnapshot:
    """What-if replay fidelity + auto-tuner quality, gated.

    Records the training workload once, then gates three layers of the
    what-if stack: unperturbed replay must be *exact* (the engine
    invariant the whole replayer rests on — tolerance 0), a
    launch-halved perturbation must reproduce its makespan cut, and
    :func:`repro.api.tune` with the default coordinate-descent
    strategy must keep clearing the acceptance bar (>= 10% measured
    gain, |prediction error| <= 15% on the validated winner).
    """
    from repro.replay import CostHooks, TraceReplayer

    config = dict(_TRAIN_CONFIG)
    base = RunConfig(**config)
    report = run(base.with_overrides(record_tasks=True))
    replayer = TraceReplayer(report.result.task_records)
    unperturbed = replayer.replay()
    halved = replayer.replay(CostHooks(launch=0.5))
    tuned = tune(TuneConfig(run=base))
    metrics = {
        "makespan_s": report.result.makespan,
        "replay_makespan_s": unperturbed.makespan,
        "replay_exact": float(
            unperturbed.makespan == report.result.makespan),
        "launch_half_makespan_s": halved.makespan,
        "launch_half_ratio": halved.makespan_ratio,
        "base_ips": tuned.base_ips,
        "tuned_ips": tuned.best_ips,
        "tuned_gain": tuned.gain,
        "tuned_fidelity_error": tuned.fidelity_error,
        "tuned_validations": len(tuned.validations),
        "tuned_candidates": tuned.candidates_evaluated,
        "tuned_improved": float(tuned.improved),
    }
    tolerances = {
        "replay_exact": 0.0,
        "tuned_validations": 0.0,
        "tuned_candidates": 0.0,
        "tuned_improved": 0.0,
        "makespan_s": 0.01,
        "replay_makespan_s": 0.01,
        "launch_half_makespan_s": 0.01,
        "launch_half_ratio": 0.01,
        "base_ips": 0.01,
        "tuned_ips": 0.02,
        "tuned_gain": 0.10,
        "tuned_fidelity_error": 0.25,
    }
    return BenchSnapshot(
        name="replay",
        config=config,
        metrics=metrics,
        monitors={"winner": {
            "assignment": {key: value for key, value
                           in sorted(tuned.best_assignment.items())},
            "strategy": tuned.strategy,
        }},
        tolerances=tolerances)


def bench_prefetch() -> BenchSnapshot:
    """Hot/cold lookahead pipeline vs FIFO on a skewed stream, gated.

    A bounded-Zipf(1.2) batch stream with a periodic cold scan (every
    4th batch reads uniform tail IDs) goes through
    :class:`~repro.prefetch.LookaheadPrefetcher` twice: once under the
    ``hotness`` policy with a counter-derived residency oracle, once
    under ``fifo``.  The gate holds the pipeline to its contract: the
    ``fifo`` arm must be the identity schedule, and hot-first
    reordering must cut exposed fetch seconds by >= 50% versus paying
    every cold batch's fetch in the foreground (the ISSUE 9
    acceptance bar).
    """
    from repro.embedding.counter import FrequencyCounter
    from repro.prefetch import (
        DEFAULT_FETCH_RATE,
        LookaheadPrefetcher,
        PrefetchConfig,
        batch_classifier,
        resident_from_counter,
    )

    config = dict(vocab_size=50_000, exponent=1.2, hot_rows=2_000,
                  batches=64, batch_size=512, cold_every=4,
                  lookahead_depth=4, hot_threshold=0.6,
                  row_bytes=64.0, step_ms=1.0, seed=0)
    hot_sampler = BoundedZipf(vocab_size=config["hot_rows"],
                              exponent=config["exponent"])
    rng = np.random.default_rng(config["seed"])
    stream = []
    for index in range(config["batches"]):
        if (index + 1) % config["cold_every"] == 0:
            # The cold scan: uniform over the tail the fast tier
            # cannot pin.
            stream.append(rng.integers(
                config["hot_rows"], config["vocab_size"],
                config["batch_size"], dtype=np.int64))
        else:
            stream.append(hot_sampler.sample(config["batch_size"], rng))
    counter = FrequencyCounter()
    for ids in stream:
        counter.observe(ids)
    resident = resident_from_counter(counter, config["hot_rows"])

    prefetch_config = PrefetchConfig(
        lookahead_depth=config["lookahead_depth"],
        hot_threshold=config["hot_threshold"])
    classifier = batch_classifier("hotness")(
        prefetch_config, resident=resident)
    fetch_s = [np.unique(ids).size * config["row_bytes"]
               / DEFAULT_FETCH_RATE for ids in stream]
    cold = [index for index, ids in enumerate(stream)
            if not classifier.classify(ids, index).hot]
    # FIFO has no lookahead to hide behind: every cold batch's fetch
    # is paid in the foreground, fully exposed.
    fifo_exposed = sum(fetch_s[index] for index in cold)

    hotness = LookaheadPrefetcher(
        prefetch_config, resident=resident,
        row_bytes=config["row_bytes"],
        step_seconds=config["step_ms"] * 1e-3)
    hot_plan = hotness.plan(stream)
    staged = {record.index for record in hotness.records}
    # Cold batches the window never got to stage still pay foreground.
    hot_exposed = (hotness.stats.exposed_fetch_seconds
                   + sum(fetch_s[index] for index in cold
                         if index not in staged))
    fifo = LookaheadPrefetcher(
        prefetch_config.with_overrides(policy="fifo"),
        resident=resident, row_bytes=config["row_bytes"],
        step_seconds=config["step_ms"] * 1e-3)
    fifo_plan = fifo.plan(stream)

    metrics = {
        "batches": hotness.stats.batches,
        "cold_class": len(cold),
        "staged": hotness.stats.staged,
        "reordered": hotness.stats.reordered,
        "max_displacement": max(
            position - index
            for position, index in enumerate(hot_plan)),
        "fifo_identity": float(
            fifo_plan == list(range(config["batches"]))),
        "fifo_staged": fifo.stats.staged,
        "exposed_fifo_s": fifo_exposed,
        "exposed_hotness_s": hot_exposed,
        "exposed_reduction": (1.0 - hot_exposed / fifo_exposed
                              if fifo_exposed > 0 else 0.0),
        "stream_overlap_ratio": hotness.stats.overlap_ratio,
        "staged_bytes": hotness.stats.staged_bytes,
    }
    tolerances = {
        "batches": 0.0,
        "cold_class": 0.0,
        "staged": 0.0,
        "reordered": 0.0,
        "max_displacement": 0.0,
        "fifo_identity": 0.0,
        "fifo_staged": 0.0,
        "exposed_fifo_s": 0.02,
        "exposed_hotness_s": 0.05,
        "exposed_reduction": 0.02,
        "stream_overlap_ratio": 0.02,
        "staged_bytes": 0.02,
    }
    return BenchSnapshot(
        name="prefetch",
        config=config,
        metrics=metrics,
        monitors={"hotness": hotness.stats.as_dict(),
                  "fifo": fifo.stats.as_dict()},
        tolerances=tolerances)


#: Name -> builder for every benchmark ``repro bench run`` knows.
BENCHES = {
    "training": bench_training,
    "interleaving": bench_interleaving,
    "serving": bench_serving,
    "cache": bench_cache,
    "faults": bench_faults,
    "shards": bench_shards,
    "online": bench_online,
    "replay": bench_replay,
    "prefetch": bench_prefetch,
    "walltime": bench_walltime,
}


def run_benches(names=None) -> list:
    """Build the selected (default: all) snapshots, in listed order.

    Every snapshot gets a ``kind="bench"`` provenance manifest (see
    :func:`repro.telemetry.provenance.build_manifest`) stamped on the
    way out, so committed baselines record the producing code.
    """
    from repro.telemetry.provenance import build_manifest

    selected = list(BENCHES) if names is None else list(names)
    unknown = [name for name in selected if name not in BENCHES]
    if unknown:
        raise ValueError(
            f"unknown bench(es) {unknown}; expected {list(BENCHES)}")
    snapshots = []
    for name in selected:
        snapshot = BENCHES[name]()
        manifest = build_manifest(kind="bench", config=snapshot.config,
                                  extra={"bench": snapshot.name})
        snapshots.append(_replace(snapshot,
                                  provenance=manifest.as_dict()))
    return snapshots
