"""Trace-driven what-if replay of a frozen task DAG.

:class:`TraceReplayer` re-executes the :class:`~repro.sim.trace.
TaskRecord` DAG of one engine run under perturbed per-class costs —
without re-running the discrete-event engine.  The algorithm exploits
an engine invariant: a task's recorded ``start`` is exactly the
instant its last predecessor finished (the engine admits tasks at
predecessor-completion events), so the record list — which the engine
appends in completion order — is a topological order, and each task's
internal timeline decomposes into alternating queue-wait gaps and
execution segments.

Replay walks that order once: a task's new ready time is the max of
its predecessors' new finish times, each execution segment is scaled
by the :class:`~repro.replay.hooks.CostHooks` scale for its resource
kind, and each wait gap is re-derived by the hooks' wait model.  When
nothing changed for a task (same ready time, identity scales) the
original record is reused verbatim, which makes an unperturbed replay
reproduce the engine's makespan *bit for bit* — the fidelity anchor
the replay bench gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.replay.hooks import CostHooks
from repro.sim.trace import FrozenTrace, TaskRecord
from repro.telemetry.critical_path import (
    CriticalPathReport,
    analyze_critical_path,
    resource_class,
)


@dataclass(frozen=True)
class ReplayResult:
    """One what-if replay: the perturbed schedule and its headline.

    :param records: re-timed :class:`TaskRecord` list, same order and
        names as the input trace (so downstream analyzers — critical
        path, Chrome trace — consume it unchanged).
    :param makespan: the replayed run length.
    :param base_makespan: the recorded run length replayed against.
    """

    records: tuple
    makespan: float
    base_makespan: float
    hooks: CostHooks
    finish_times: dict = field(default_factory=dict)

    @property
    def makespan_ratio(self) -> float:
        """Replayed over recorded makespan (1.0 = unchanged)."""
        if self.base_makespan <= 0:
            return 1.0
        return self.makespan / self.base_makespan

    def finish(self, name: str, default: float = 0.0) -> float:
        """The replayed finish time of one task."""
        return self.finish_times.get(name, default)

    def critical_path(self, top_k: int = 10) -> CriticalPathReport:
        """Critical-path analysis of the replayed schedule."""
        return analyze_critical_path(list(self.records), self.makespan,
                                     top_k=top_k)

    def class_exec_seconds(self) -> dict:
        """Total execution seconds per resource class (no waits)."""
        totals: dict = {}
        for record in self.records:
            for kind, seconds in record.resource_seconds().items():
                name = resource_class(kind)
                totals[name] = totals.get(name, 0.0) + seconds
        return totals


class TraceReplayer:
    """Replays a frozen task DAG under pluggable cost hooks.

    :param records: :class:`TaskRecord` list in the engine's completion
        order (what ``record_tasks=True`` produces, or a loaded
        :class:`~repro.sim.trace.FrozenTrace`).
    :param makespan: recorded run length; defaults to the latest
        record end.
    """

    def __init__(self, records, makespan: float | None = None):
        self._records = tuple(records)
        if not self._records:
            raise ValueError("cannot replay an empty trace")
        names = {record.name for record in self._records}
        seen: set = set()
        for record in self._records:
            for pred in record.preds:
                if pred in names and pred not in seen:
                    raise ValueError(
                        f"records are not topologically ordered: "
                        f"{record.name!r} precedes its predecessor "
                        f"{pred!r}")
            seen.add(record.name)
        if makespan is None:
            makespan = max(record.end for record in self._records)
        self._makespan = makespan

    @classmethod
    def from_trace(cls, trace: FrozenTrace) -> "TraceReplayer":
        """A replayer over a saved :class:`FrozenTrace`."""
        return cls(trace.records, makespan=trace.makespan)

    @property
    def records(self) -> tuple:
        return self._records

    @property
    def makespan(self) -> float:
        return self._makespan

    def replay(self, hooks: CostHooks | None = None,
               record_hooks=None) -> ReplayResult:
        """Re-time the DAG under ``hooks`` (default: identity).

        :param record_hooks: optional ``record -> CostHooks | None``
            override — a record for which it returns hooks is re-timed
            under those instead of the global ``hooks``.  This is how
            op-targeted what-ifs are expressed ("scale only the
            shuffle ops by 1.3x"): :class:`CostHooks` itself scales
            resource *kinds*, which every op shares.
        """
        base_hooks = hooks or CostHooks()
        base_scales = base_hooks.table()
        base_identity = base_hooks.identity
        finish: dict = {}
        records = []
        makespan = 0.0
        for record in self._records:
            ready = 0.0
            for pred in record.preds:
                end = finish.get(pred)
                if end is not None and end > ready:
                    ready = end
            hooks = base_hooks
            scales = base_scales
            identity = base_identity
            if record_hooks is not None:
                override = record_hooks(record)
                if override is not None:
                    hooks = override
                    scales = override.table()
                    identity = override.identity
            if identity and ready == record.start:
                # Nothing upstream moved and no scale applies: the
                # recorded timing is already the replayed timing.
                # Reusing the record verbatim keeps unperturbed
                # replays float-exact.
                replayed = record
            else:
                replayed = self._retime(record, ready, hooks, scales)
            finish[replayed.name] = replayed.end
            if replayed.end > makespan:
                makespan = replayed.end
            records.append(replayed)
        return ReplayResult(records=tuple(records), makespan=makespan,
                            base_makespan=self._makespan,
                            hooks=base_hooks, finish_times=finish)

    @staticmethod
    def _retime(record: TaskRecord, ready: float, hooks: CostHooks,
                scales: dict) -> TaskRecord:
        """Rebuild one record's timeline from its new ready time."""
        cursor_old = record.start
        cursor_new = ready
        segments = []
        for kind, t0, t1 in record.segments:
            scale = scales.get(kind, 1.0)
            gap = max(0.0, t0 - cursor_old)
            cursor_new += gap * hooks.wait_scale(scale)
            n0 = cursor_new
            cursor_new += (t1 - t0) * scale
            segments.append((kind, n0, cursor_new))
            cursor_old = t1
        # Trailing time after the last segment (terminal bookkeeping)
        # has no following segment to take a scale from; keep it.
        end = cursor_new + max(0.0, record.end - cursor_old)
        return TaskRecord(name=record.name, start=ready, end=end,
                          preds=record.preds, tags=record.tags,
                          segments=tuple(segments))
