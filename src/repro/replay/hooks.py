"""Pluggable per-class cost hooks for trace replay.

A :class:`CostHooks` instance answers one question per execution
segment: by how much does the perturbed world scale this segment's
duration?  Scales are declared per resource *class* (compute, memory,
communication, launch — the same buckets the critical-path analyzer
attributes to) with optional per-:class:`~repro.sim.resource.
ResourceKind` overrides for finer models (e.g. the auto-tuner's
per-kind work ratios).

Queue waits are re-derived, not copied: each wait gap precedes some
segment, and the hook's ``wait_model`` decides how that gap tracks the
segment's scale.  The default ``"congestion"`` model is asymmetric —
waits grow with added work (``max(1, scale)``) but are not credited
when work shrinks — because recorded waits are contention stalls whose
structure survives load shedding far better than it survives load
growth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.resource import ResourceKind
from repro.telemetry.critical_path import RESOURCE_CLASSES, resource_class

#: How a wait gap scales relative to the following segment's scale.
WAIT_MODELS = ("congestion", "scaled", "frozen")


@dataclass(frozen=True)
class CostHooks:
    """Per-class duration scales plus the wait re-derivation policy.

    :param compute / memory / communication / launch: multiplicative
        duration scales for segments of each resource class.
    :param kind_overrides: ``((kind_value, scale), ...)`` pairs taking
        precedence over the class scale for specific resource kinds.
    :param wait_model: ``"congestion"`` (waits scale by
        ``max(1, scale)``), ``"scaled"`` (waits track the segment
        scale), or ``"frozen"`` (waits keep their recorded duration).
    """

    compute: float = 1.0
    memory: float = 1.0
    communication: float = 1.0
    launch: float = 1.0
    kind_overrides: tuple = ()
    wait_model: str = "congestion"

    def __post_init__(self) -> None:
        for name in ("compute", "memory", "communication", "launch"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ValueError(
                    f"{name} scale must be > 0, got {value!r}")
        known = {kind.value for kind in ResourceKind}
        for kind_value, scale in self.kind_overrides:
            if kind_value not in known:
                raise ValueError(
                    f"unknown resource kind {kind_value!r}; "
                    f"expected one of {sorted(known)}")
            if not scale > 0.0:
                raise ValueError(
                    f"scale for {kind_value!r} must be > 0, "
                    f"got {scale!r}")
        if self.wait_model not in WAIT_MODELS:
            raise ValueError(
                f"unknown wait_model {self.wait_model!r}; "
                f"expected one of {WAIT_MODELS}")

    @classmethod
    def from_class_scales(cls, scales: dict,
                          wait_model: str = "congestion") -> "CostHooks":
        """Build from a ``{class: scale}`` dict (unlisted classes: 1)."""
        unknown = sorted(set(scales)
                         - {"compute", "memory", "communication",
                            "launch"})
        if unknown:
            raise ValueError(
                f"unknown resource class(es) {unknown}; expected a "
                f"subset of {[c for c in RESOURCE_CLASSES if c != 'wait']}")
        return cls(compute=scales.get("compute", 1.0),
                   memory=scales.get("memory", 1.0),
                   communication=scales.get("communication", 1.0),
                   launch=scales.get("launch", 1.0),
                   wait_model=wait_model)

    @classmethod
    def from_kind_scales(cls, scales: dict,
                         wait_model: str = "congestion") -> "CostHooks":
        """Build from a ``{kind_value: scale}`` dict (per-kind model)."""
        return cls(kind_overrides=tuple(sorted(scales.items())),
                   wait_model=wait_model)

    @property
    def identity(self) -> bool:
        """True when no segment duration changes under these hooks."""
        return (self.compute == 1.0 and self.memory == 1.0
                and self.communication == 1.0 and self.launch == 1.0
                and all(scale == 1.0
                        for _kind, scale in self.kind_overrides))

    def scale_for(self, kind_value: str) -> float:
        """The duration scale applied to segments on ``kind_value``."""
        for override_kind, scale in self.kind_overrides:
            if override_kind == kind_value:
                return scale
        return getattr(self, resource_class(kind_value))

    def table(self) -> dict:
        """``{kind_value: scale}`` over every known resource kind."""
        return {kind.value: self.scale_for(kind.value)
                for kind in ResourceKind}

    def wait_scale(self, segment_scale: float) -> float:
        """The scale applied to the wait gap before a segment."""
        if self.wait_model == "frozen":
            return 1.0
        if self.wait_model == "congestion":
            return max(1.0, segment_scale)
        return segment_scale

    def as_dict(self) -> dict:
        return {
            "compute": self.compute,
            "memory": self.memory,
            "communication": self.communication,
            "launch": self.launch,
            "kind_overrides": [list(pair)
                               for pair in self.kind_overrides],
            "wait_model": self.wait_model,
        }
