"""Trace-driven what-if replay (the byteprofile-analysis recipe).

Record one run (``record_tasks=True`` or a saved
:class:`~repro.sim.trace.FrozenTrace`), then ask "what if launches
were half as expensive?" without re-running the engine:
:class:`~repro.replay.replayer.TraceReplayer` re-times the frozen task
DAG under :class:`~repro.replay.hooks.CostHooks` per-class cost
scales, re-deriving queue waits and the makespan.  The auto-tuner
(:mod:`repro.tuning`) drives this with per-kind work ratios to rank
config candidates cheaply.
"""

from repro.replay.hooks import WAIT_MODELS, CostHooks
from repro.replay.replayer import ReplayResult, TraceReplayer

__all__ = [
    "CostHooks",
    "ReplayResult",
    "TraceReplayer",
    "WAIT_MODELS",
]
