"""Topology-aware communication planning.

Paper SS V: "We also implement topology-aware communication to avoid IO
tasks on GPU devices from the same node competing for limited NIC
resources."  This module plans which NIC each worker's collective
traffic uses and staggers same-node workers so they do not burst into
the NIC simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import ClusterSpec


@dataclass(frozen=True)
class NicAssignment:
    """One worker's share of the node's NIC resources.

    :param nic_index: which physical NIC the worker drives.
    :param time_slot: launch stagger slot within the NIC group; workers
        in distinct slots start their collective phases offset so their
        bursts interleave instead of colliding.
    :param bandwidth_share: guaranteed fraction of the NIC.
    """

    worker_index: int
    nic_index: int
    time_slot: int
    bandwidth_share: float


def plan_nic_assignments(cluster: ClusterSpec,
                         nics_per_node: int = 1) -> list:
    """Assign every worker on a node to a NIC and a stagger slot.

    Workers spread round-robin across NICs; within one NIC, each worker
    gets a distinct time slot and an even bandwidth share.  Returns one
    :class:`NicAssignment` per worker of a single node (all nodes are
    homogeneous).
    """
    if nics_per_node < 1:
        raise ValueError("nics_per_node must be >= 1")
    workers = cluster.node.gpus_per_node
    per_nic = {}
    assignments = []
    for worker in range(workers):
        nic = worker % nics_per_node
        slot = per_nic.get(nic, 0)
        per_nic[nic] = slot + 1
        assignments.append(NicAssignment(
            worker_index=worker, nic_index=nic, time_slot=slot,
            bandwidth_share=0.0))
    # Even shares now that per-NIC populations are known.
    final = []
    for assignment in assignments:
        population = per_nic[assignment.nic_index]
        final.append(NicAssignment(
            worker_index=assignment.worker_index,
            nic_index=assignment.nic_index,
            time_slot=assignment.time_slot,
            bandwidth_share=1.0 / population))
    return final


def effective_worker_bandwidth(cluster: ClusterSpec,
                               nics_per_node: int = 1,
                               topology_aware: bool = True) -> float:
    """Per-worker NIC bandwidth (bytes/s) under a given policy.

    Without topology awareness, same-node workers contend for one NIC
    with a congestion penalty (bursty collisions waste ~25% of the
    link); with it, each worker holds a clean share of its assigned
    NIC.
    """
    node = cluster.node
    total = node.network.bandwidth * nics_per_node
    share = total / max(1, node.gpus_per_node)
    if topology_aware:
        return share
    return share * 0.75


def stagger_offsets(assignments: list, burst_seconds: float) -> dict:
    """Start-time offsets per worker that de-collide NIC bursts.

    Workers in the same NIC's slots start ``burst_seconds`` apart, so a
    shuffle burst from slot 0 drains before slot 1 begins — the
    pipelining trick K-Interleaving applies within a worker, applied
    across co-located workers.
    """
    if burst_seconds < 0:
        raise ValueError("burst_seconds must be >= 0")
    return {assignment.worker_index: assignment.time_slot * burst_seconds
            for assignment in assignments}
