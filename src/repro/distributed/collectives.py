"""Collective communication: functional semantics + time models.

The functional collectives operate on real numpy arrays (used by the
multi-worker trainers); the time models give the per-worker seconds a
collective costs on a given link, which is what the simulator's cost
model encodes through :mod:`repro.graph.builder`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.specs import LinkSpec


class CollectiveTimeout(RuntimeError):
    """A collective exhausted its retry budget with no quorum."""


# -- functional collectives ---------------------------------------------------

def allreduce_mean(arrays: list) -> np.ndarray:
    """Allreduce with mean: every worker receives the same average.

    :param arrays: one array per worker, identical shapes.
    """
    if not arrays:
        raise ValueError("allreduce needs at least one participant")
    shapes = {array.shape for array in arrays}
    if len(shapes) != 1:
        raise ValueError(f"shape mismatch across workers: {shapes}")
    return np.mean(np.stack(arrays, axis=0), axis=0)


def alltoallv(chunks: list) -> list:
    """AllToAllv: worker ``i`` sends ``chunks[i][j]`` to worker ``j``.

    :param chunks: ``chunks[i][j]`` is the array worker ``i`` addresses
        to worker ``j``; the matrix must be square.
    :returns: ``received`` where ``received[j]`` is the list of arrays
        worker ``j`` obtained (indexed by sender).
    """
    workers = len(chunks)
    if any(len(row) != workers for row in chunks):
        raise ValueError("alltoallv requires a square chunk matrix")
    return [
        [chunks[sender][receiver] for sender in range(workers)]
        for receiver in range(workers)
    ]


# -- time models --------------------------------------------------------------

def ring_allreduce_time(payload_bytes: float, workers: int,
                        link: LinkSpec) -> float:
    """Per-worker walltime of a ring Allreduce.

    The ring moves ``2 * (W-1)/W * payload`` bytes per worker over
    ``2*(W-1)`` latency-bound steps.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    if workers == 1:
        return 0.0
    volume = 2.0 * payload_bytes * (workers - 1) / workers
    return volume / link.bandwidth + 2 * (workers - 1) * link.latency


def alltoallv_time(payload_bytes: float, workers: int,
                   link: LinkSpec, skew: float = 1.0) -> float:
    """Per-worker walltime of an AllToAllv exchange.

    ``payload_bytes`` is the total data a worker contributes; the
    remote share ``(W-1)/W`` crosses the link.  ``skew >= 1`` inflates
    the critical path for unbalanced shards (stragglers from skewed
    categorical data, paper SS II-D).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if skew < 1.0:
        raise ValueError("skew must be >= 1.0")
    if workers == 1:
        return 0.0
    remote = payload_bytes * (workers - 1) / workers * skew
    return remote / link.bandwidth + (workers - 1) * link.latency


def ps_pull_time(payload_bytes: float, link: LinkSpec,
                 serving_rate: float = float("inf")) -> float:
    """Walltime to pull ``payload_bytes`` from parameter servers.

    The effective rate is the slower of the worker link and the
    servers' scattered-read serving capacity.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    rate = min(link.bandwidth, serving_rate)
    return payload_bytes / rate + link.latency


# -- failure-aware collectives ------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff semantics for failure-aware collectives.

    An attempt that includes a failed participant burns ``timeout_s``
    (the rendezvous deadline) before the failure is detected; the
    ``n``-th retry then waits ``base_backoff_s * backoff_factor**n``
    before rejoining — the standard exponential-backoff loop of
    production collective runtimes.
    """

    max_retries: int = 3
    timeout_s: float = 0.5
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s < 0:
            raise ValueError("timeout_s must be >= 0")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def backoff_s(self, retry: int) -> float:
        """Wait before the ``retry``-th retry (0-based)."""
        if retry < 0:
            raise ValueError("retry must be >= 0")
        return self.base_backoff_s * self.backoff_factor ** retry


@dataclass(frozen=True)
class CollectiveOutcome:
    """Result of one failure-aware collective.

    :param result: the reduced array (mean over surviving workers).
    :param attempts: rendezvous attempts made (1 = clean first try).
    :param elapsed_s: modeled seconds spent, timeouts and backoffs
        included, on top of the failure-free collective itself.
    :param dropped_workers: ranks excluded after exhausting retries.
    """

    result: np.ndarray
    attempts: int
    elapsed_s: float
    dropped_workers: tuple = ()


class FaultAwareAllreduce:
    """Allreduce that survives worker loss by retry, then exclusion.

    ``failure_oracle(t)`` returns the set of worker ranks down at
    modeled time ``t`` (build one from a
    :class:`~repro.faults.plan.FaultPlan` with
    :func:`failed_workers_oracle`).  Each attempt that sees a failed
    participant costs the policy's timeout, then backs off
    exponentially; a worker that recovers mid-backoff rejoins.  When
    retries are exhausted, still-failed workers are dropped and the
    mean is taken over the survivors — the collective degrades instead
    of deadlocking.  Raises :class:`CollectiveTimeout` only when no
    participant survives.
    """

    def __init__(self, workers: int, policy: RetryPolicy | None = None,
                 failure_oracle=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.failure_oracle = failure_oracle or (lambda _t: frozenset())

    def allreduce_mean(self, arrays: list,
                       now_s: float = 0.0) -> CollectiveOutcome:
        """Mean-allreduce ``arrays`` (one per rank) at time ``now_s``."""
        if len(arrays) != self.workers:
            raise ValueError(
                f"expected {self.workers} arrays, got {len(arrays)}")
        policy = self.policy
        clock = now_s
        elapsed = 0.0
        attempts = 0
        while True:
            attempts += 1
            failed = frozenset(self.failure_oracle(clock)) \
                & frozenset(range(self.workers))
            if not failed:
                return CollectiveOutcome(
                    result=allreduce_mean(arrays),
                    attempts=attempts, elapsed_s=elapsed)
            retry = attempts - 1
            if retry >= policy.max_retries:
                survivors = [arrays[rank] for rank in range(self.workers)
                             if rank not in failed]
                if not survivors:
                    raise CollectiveTimeout(
                        f"all {self.workers} workers failed after "
                        f"{attempts} attempts")
                return CollectiveOutcome(
                    result=allreduce_mean(survivors),
                    attempts=attempts, elapsed_s=elapsed,
                    dropped_workers=tuple(sorted(failed)))
            wait = policy.timeout_s + policy.backoff_s(retry)
            clock += wait
            elapsed += wait


def failed_workers_oracle(plan):
    """``t -> set of ranks down`` from a plan's crash windows."""
    def oracle(t: float):
        return {event.worker for event in plan.active(t, kind="crash")}
    return oracle
