"""Collective communication: functional semantics + time models.

The functional collectives operate on real numpy arrays (used by the
multi-worker trainers); the time models give the per-worker seconds a
collective costs on a given link, which is what the simulator's cost
model encodes through :mod:`repro.graph.builder`.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.specs import LinkSpec


# -- functional collectives ---------------------------------------------------

def allreduce_mean(arrays: list) -> np.ndarray:
    """Allreduce with mean: every worker receives the same average.

    :param arrays: one array per worker, identical shapes.
    """
    if not arrays:
        raise ValueError("allreduce needs at least one participant")
    shapes = {array.shape for array in arrays}
    if len(shapes) != 1:
        raise ValueError(f"shape mismatch across workers: {shapes}")
    return np.mean(np.stack(arrays, axis=0), axis=0)


def alltoallv(chunks: list) -> list:
    """AllToAllv: worker ``i`` sends ``chunks[i][j]`` to worker ``j``.

    :param chunks: ``chunks[i][j]`` is the array worker ``i`` addresses
        to worker ``j``; the matrix must be square.
    :returns: ``received`` where ``received[j]`` is the list of arrays
        worker ``j`` obtained (indexed by sender).
    """
    workers = len(chunks)
    if any(len(row) != workers for row in chunks):
        raise ValueError("alltoallv requires a square chunk matrix")
    return [
        [chunks[sender][receiver] for sender in range(workers)]
        for receiver in range(workers)
    ]


# -- time models --------------------------------------------------------------

def ring_allreduce_time(payload_bytes: float, workers: int,
                        link: LinkSpec) -> float:
    """Per-worker walltime of a ring Allreduce.

    The ring moves ``2 * (W-1)/W * payload`` bytes per worker over
    ``2*(W-1)`` latency-bound steps.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    if workers == 1:
        return 0.0
    volume = 2.0 * payload_bytes * (workers - 1) / workers
    return volume / link.bandwidth + 2 * (workers - 1) * link.latency


def alltoallv_time(payload_bytes: float, workers: int,
                   link: LinkSpec, skew: float = 1.0) -> float:
    """Per-worker walltime of an AllToAllv exchange.

    ``payload_bytes`` is the total data a worker contributes; the
    remote share ``(W-1)/W`` crosses the link.  ``skew >= 1`` inflates
    the critical path for unbalanced shards (stragglers from skewed
    categorical data, paper SS II-D).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if skew < 1.0:
        raise ValueError("skew must be >= 1.0")
    if workers == 1:
        return 0.0
    remote = payload_bytes * (workers - 1) / workers * skew
    return remote / link.bandwidth + (workers - 1) * link.latency


def ps_pull_time(payload_bytes: float, link: LinkSpec,
                 serving_rate: float = float("inf")) -> float:
    """Walltime to pull ``payload_bytes`` from parameter servers.

    The effective rate is the slower of the worker link and the
    servers' scattered-read serving capacity.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    rate = min(link.bandwidth, serving_rate)
    return payload_bytes / rate + link.latency
