"""Executable multi-worker training strategies.

:class:`DataParallelTrainer` coordinates ``W`` replica networks with
mean-Allreduce on dense gradients and a shared embedding store — the
semantics PICASSO's hybrid strategy and the Horovod/PyTorch baselines
implement.  :class:`ParameterServer` + :class:`PsWorkerTrainer` realize
asynchronous PS training with real update lag.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.data.loader import Batch
from repro.distributed.collectives import allreduce_mean
from repro.embedding.placement import ExchangeLoad, measure_exchange
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad, Optimizer


def _shard_batch(batch: Batch, workers: int) -> list:
    """Split one global batch into per-worker shards (row-wise)."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if batch.batch_size % workers:
        raise ValueError(
            f"batch size {batch.batch_size} not divisible by {workers}")
    per = batch.batch_size // workers
    shards = []
    for rank in range(workers):
        rows = slice(rank * per, (rank + 1) * per)
        sparse = {}
        for name, ids in batch.sparse.items():
            seq = ids.size // batch.batch_size
            sparse[name] = ids.reshape(batch.batch_size, seq)[rows] \
                .reshape(-1)
        shards.append(Batch(
            batch_size=per, sparse=sparse,
            numeric=batch.numeric[rows],
            labels=None if batch.labels is None else batch.labels[rows]))
    return shards


class DataParallelTrainer:
    """Synchronous data parallelism over real replica networks.

    Every worker holds a replica; each step shards the global batch,
    runs forward/backward per replica, Allreduces the dense gradients,
    and applies identical updates.  Embedding tables are shared (the
    model-parallel half of the hybrid strategy: one logical table,
    sharded ownership is a placement detail).
    """

    def __init__(self, template: WdlNetwork, workers: int,
                 optimizer: Optimizer | None = None, allreduce=None,
                 placement_plan=None):
        """:param allreduce: reduction hook ``(arrays) -> mean array``;
        defaults to :func:`~repro.distributed.collectives.allreduce_mean`.
        Pass a bound
        :class:`~repro.distributed.collectives.FaultAwareAllreduce`
        adapter to train through injected worker failures.

        :param placement_plan: optional
            :class:`~repro.embedding.placement.PlacementPlan`; when
            set, every step's sparse lookups are priced through the
            plan and the accumulated per-worker AllToAllv bytes are
            available via :meth:`exchange_stats` (feed them to
            :class:`~repro.telemetry.monitor.SkewMonitor`)."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.network = template
        self.optimizer = optimizer or Adagrad(lr=0.05)
        self._allreduce = allreduce or allreduce_mean
        if placement_plan is not None \
                and placement_plan.num_workers != workers:
            raise ValueError(
                "placement plan built for "
                f"{placement_plan.num_workers} workers, trainer has "
                f"{workers}")
        self.placement_plan = placement_plan
        self._exchange = ExchangeLoad(
            per_worker_bytes=np.zeros(workers))
        self._exchange_steps = 0

    def train_step(self, batch: Batch) -> float:
        """One synchronous step; returns the mean worker loss.

        Mathematically identical to a single step on the undivided
        batch: dense gradients are mean-Allreduced, sparse gradients
        carry the 1/W shard weight, so the update equals the full-batch
        gradient (the equivalence Tab. III relies on).
        """
        shards = _shard_batch(batch, self.workers)
        if self.placement_plan is not None:
            self._record_exchange(shards)
        losses = []
        dense_grads = []
        sparse_grads = []
        for shard in shards:
            # Replicas stay in exact sync through the Allreduce, so one
            # network evaluates every shard.
            loss = self.network.compute_gradients(shard)
            losses.append(loss)
            dense_grads.append({
                name: grad.copy()
                for name, (_value, grad)
                in self.network.parameters().items()})
            sparse_grads.append({
                table.name: [(rows.copy(), grads / self.workers)
                             for rows, grads in table.sparse_grads()]
                for table in self.network.sparse_tables()})

        reduced = {
            name: self._allreduce([grads[name] for grads in dense_grads])
            for name in dense_grads[0]
        }
        self.network.zero_grad()
        for name, (_value, grad) in self.network.parameters().items():
            grad[:] = reduced[name]
        for table in self.network.sparse_tables():
            for shard_grads in sparse_grads:
                for rows, grads in shard_grads[table.name]:
                    table._sparse_grads.append((rows, grads))
        self.optimizer.step(self.network.parameters(),
                            self.network.sparse_tables())
        self.network.zero_grad()
        return float(np.mean(losses))

    def train(self, batches, prefetcher=None) -> list:
        """Run a batch sequence; returns per-step mean losses.

        :param prefetcher: optional
            :class:`~repro.prefetch.LookaheadPrefetcher`; global
            batches are consumed in its hot-first window order, so
            cold batches' embedding rows stage while resident batches
            train.  ``None`` keeps strict arrival order.
        """
        if prefetcher is None:
            return [self.train_step(batch) for batch in batches]
        return [self.train_step(batch)
                for _index, batch in prefetcher.schedule(batches)]

    def _record_exchange(self, shards) -> None:
        """Price this step's lookups through the placement plan."""
        plan = self.placement_plan
        for name in shards[0].sparse:
            if name not in plan.fields:
                continue
            load = measure_exchange(
                plan, name, [shard.sparse[name] for shard in shards])
            self._exchange = self._exchange.merge(load)
        self._exchange_steps += 1

    def exchange_stats(self) -> dict:
        """Accumulated plan-priced AllToAllv load over trained steps.

        Empty when no plan is attached or no step has run yet;
        otherwise the :class:`~repro.embedding.placement.ExchangeLoad`
        dict plus the step count and plan policy.
        """
        if self.placement_plan is None or self._exchange_steps == 0:
            return {}
        stats = self._exchange.as_dict()
        stats["steps"] = self._exchange_steps
        stats["policy"] = self.placement_plan.policy
        return stats


class ParameterServer:
    """A real parameter server holding the authoritative dense state.

    Workers pull snapshots and push gradients; pushes are applied in
    arrival order with the server's optimizer.  The server exposes a
    version counter so tests can observe staleness directly.
    """

    def __init__(self, template: WdlNetwork,
                 optimizer: Optimizer | None = None):
        self.network = template
        self.optimizer = optimizer or Adagrad(lr=0.05)
        self.version = 0

    def pull(self) -> tuple:
        """(version, dense parameter snapshot)."""
        return self.version, self.network.dense_state()

    def push(self, dense_grads: dict, sparse_grads: dict) -> None:
        """Apply one worker's gradients (async, arrival order)."""
        for name, (_value, grad) in self.network.parameters().items():
            grad[:] = dense_grads[name]
        for table in self.network.sparse_tables():
            table.zero_grad()
            for rows, grads in sparse_grads.get(table.name, []):
                table._sparse_grads.append((rows, grads))
        self.optimizer.step(self.network.parameters(),
                            self.network.sparse_tables())
        self.network.zero_grad()
        self.version += 1


class PsWorkerTrainer:
    """Asynchronous PS training with an explicit in-flight window.

    ``inflight`` pushes may be outstanding before a worker refreshes
    its snapshot — the knob controlling gradient staleness (TF-PS
    behaviour in Tab. III).
    """

    def __init__(self, server: ParameterServer, inflight: int = 2):
        if inflight < 0:
            raise ValueError("inflight must be >= 0")
        self.server = server
        self.inflight = inflight
        self._queue: deque = deque()
        self.observed_staleness: list = []

    def train_step(self, batch: Batch) -> float:
        """Compute on a possibly stale snapshot; push asynchronously."""
        network = self.server.network
        pulled_version, snapshot = self.server.pull()
        live_state = network.dense_state()
        network.load_dense_state(snapshot)
        loss = network.compute_gradients(batch)
        dense = {name: grad.copy()
                 for name, (_value, grad) in network.parameters().items()}
        sparse = {table.name: [(rows.copy(), grads.copy())
                               for rows, grads in table.sparse_grads()]
                  for table in network.sparse_tables()}
        network.zero_grad()
        network.load_dense_state(live_state)

        self._queue.append((pulled_version, dense, sparse))
        while len(self._queue) > self.inflight:
            version, dense_grads, sparse_grads = self._queue.popleft()
            self.observed_staleness.append(self.server.version - version)
            self.server.push(dense_grads, sparse_grads)
        return loss

    def drain(self) -> None:
        """Flush every outstanding push (end of training)."""
        while self._queue:
            version, dense_grads, sparse_grads = self._queue.popleft()
            self.observed_staleness.append(self.server.version - version)
            self.server.push(dense_grads, sparse_grads)
