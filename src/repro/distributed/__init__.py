"""Distributed training substrate.

Two halves:

* :mod:`repro.distributed.collectives` — functional numpy collectives
  (Allreduce, AllToAllv) plus analytic time models for ring/pairwise
  algorithms on the cluster links.
* :mod:`repro.distributed.strategies` — executable multi-worker
  training: synchronous data-parallel workers coordinated by Allreduce
  (the DP/Horovod and PICASSO dense path) and a real parameter server
  with configurable staleness (the TF-PS path).

These run real numpy training at laptop scale and underpin the
correctness claims behind Tab. III: synchronous multi-worker training
is equivalent to single-worker training on the combined batch, while
async PS updates drift with staleness.
"""

from repro.distributed.collectives import (
    allreduce_mean,
    alltoallv,
    alltoallv_time,
    ring_allreduce_time,
)
from repro.distributed.topology import (
    NicAssignment,
    effective_worker_bandwidth,
    plan_nic_assignments,
    stagger_offsets,
)
from repro.distributed.compression import (
    ErrorFeedbackCompressor,
    QuantizedTensor,
    compressed_allreduce_mean,
    compression_ratio,
    dequantize,
    quantize,
)
from repro.distributed.strategies import (
    DataParallelTrainer,
    ParameterServer,
    PsWorkerTrainer,
)

__all__ = [
    "allreduce_mean",
    "alltoallv",
    "alltoallv_time",
    "ring_allreduce_time",
    "DataParallelTrainer",
    "ParameterServer",
    "PsWorkerTrainer",
    "NicAssignment",
    "effective_worker_bandwidth",
    "plan_nic_assignments",
    "stagger_offsets",
    "ErrorFeedbackCompressor",
    "QuantizedTensor",
    "compressed_allreduce_mean",
    "compression_ratio",
    "dequantize",
    "quantize",
]
