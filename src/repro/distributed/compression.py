"""Quantized gradient communication with error feedback.

Paper SS V lists "quantitative communication" among the orthogonal
accelerations PICASSO exposes through its flexible interface (citing
QSGD-style compression), while SS II-A warns that many WDL models are
precision-sensitive — which is why compression is an opt-in knob, not
a default.  This module implements:

* :func:`quantize` / :func:`dequantize` — stochastic uniform
  quantization to ``2**bits`` levels per tensor (QSGD's scheme);
* :class:`ErrorFeedbackCompressor` — EF-SGD residual correction so the
  quantization error is re-injected into the next round, keeping the
  optimization unbiased over time (the step-ahead error-feedback line
  of work the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """A compressed tensor: int levels + the dequantization scale."""

    levels: np.ndarray  # uint8/uint16 level indices
    scale: float
    offset: float
    shape: tuple

    @property
    def compressed_bytes(self) -> int:
        """Wire size of the compressed payload."""
        return self.levels.nbytes + 16  # scale + offset

    @property
    def original_bytes(self) -> int:
        """Wire size of the uncompressed fp32 tensor."""
        return int(np.prod(self.shape)) * 4


def quantize(tensor: np.ndarray, bits: int = 8,
             rng: np.random.Generator | None = None) -> QuantizedTensor:
    """Stochastic uniform quantization to ``2**bits`` levels.

    Stochastic rounding makes the quantizer unbiased:
    ``E[dequantize(quantize(x))] == x``.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    array = np.asarray(tensor, dtype=np.float64)
    lo = float(array.min()) if array.size else 0.0
    hi = float(array.max()) if array.size else 0.0
    span = hi - lo
    num_levels = (1 << bits) - 1
    if span <= 0:
        levels = np.zeros(array.shape,
                          dtype=np.uint16 if bits > 8 else np.uint8)
        return QuantizedTensor(levels=levels, scale=0.0, offset=lo,
                               shape=array.shape)
    normalized = (array - lo) / span * num_levels
    floor = np.floor(normalized)
    fraction = normalized - floor
    rng = rng or np.random.default_rng(0)
    rounded = floor + (rng.random(array.shape) < fraction)
    rounded = np.clip(rounded, 0, num_levels)
    dtype = np.uint16 if bits > 8 else np.uint8
    return QuantizedTensor(levels=rounded.astype(dtype),
                           scale=span / num_levels, offset=lo,
                           shape=array.shape)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Reconstruct the fp64 tensor from its quantized form."""
    return (quantized.levels.astype(np.float64) * quantized.scale
            + quantized.offset)


class ErrorFeedbackCompressor:
    """EF-SGD: carry the quantization residual into the next round.

    ``compress`` returns the quantized (gradient + residual) and
    remembers what was lost; over many rounds the accumulated error
    stays bounded, which is what keeps compressed training convergent.
    """

    def __init__(self, bits: int = 8, seed: int = 0):
        if not 1 <= bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits
        self._rng = np.random.default_rng(seed)
        self._residuals: dict = {}

    def compress(self, name: str, gradient: np.ndarray) -> QuantizedTensor:
        """Quantize ``gradient`` plus this tensor's carried residual."""
        corrected = np.asarray(gradient, dtype=np.float64)
        residual = self._residuals.get(name)
        if residual is not None:
            corrected = corrected + residual
        quantized = quantize(corrected, bits=self.bits, rng=self._rng)
        self._residuals[name] = corrected - dequantize(quantized)
        return quantized

    def residual_norm(self, name: str) -> float:
        """L2 norm of the carried residual for one tensor."""
        residual = self._residuals.get(name)
        if residual is None:
            return 0.0
        return float(np.linalg.norm(residual))

    def reset(self) -> None:
        """Drop all carried residuals."""
        self._residuals.clear()


def compression_ratio(quantized: QuantizedTensor) -> float:
    """Wire-size reduction factor of one compressed tensor."""
    if quantized.compressed_bytes == 0:
        return 1.0
    return quantized.original_bytes / quantized.compressed_bytes


def compressed_allreduce_mean(arrays: list, bits: int = 8,
                              seed: int = 0) -> np.ndarray:
    """Allreduce with per-worker quantization (a lossy collective).

    Each worker's contribution is quantized before averaging — the
    bandwidth-saving trade the paper's precision-sensitive models must
    opt into deliberately.
    """
    if not arrays:
        raise ValueError("allreduce needs at least one participant")
    rng = np.random.default_rng(seed)
    restored = [dequantize(quantize(array, bits=bits, rng=rng))
                for array in arrays]
    return np.mean(np.stack(restored, axis=0), axis=0)
