"""Baseline training frameworks the paper compares against.

Each baseline is an :class:`ExecutionPlan` recipe over the shared cost
model: the frameworks differ in distribution strategy, launch-path
efficiency, prefetching, and PS congestion — not in physics — exactly
as in the paper's single-cluster comparison.

* ``TF-PS``: TensorFlow 1.15 asynchronous parameter server (Fig. 10's
  slowest baseline; no NVLink in this mode).
* ``PyTorch``: Facebook's hybrid strategy — embeddings model-parallel
  with AllToAll over NCCL, dense data-parallel.
* ``Horovod``: PyTorch DDP-style data parallelism with Allreduce.
* ``XDL``: Alibaba's in-house optimized synchronous PS (baseline of
  Tab. VII/VIII and the production tables).
"""

from repro.baselines.frameworks import (
    Framework,
    FrameworkProfile,
    HOROVOD,
    PYTORCH,
    TF_PS,
    XDL,
    framework_by_name,
)

__all__ = [
    "Framework",
    "FrameworkProfile",
    "HOROVOD",
    "PYTORCH",
    "TF_PS",
    "XDL",
    "framework_by_name",
]
