"""Executable models of the compared training frameworks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import RunReport, simulate_plan
from repro.graph.builder import (
    CostModel,
    ExecutionPlan,
    WorkloadStats,
    groups_per_field,
)
from repro.hardware.topology import ClusterSpec
from repro.models.base import ModelSpec


@dataclass(frozen=True)
class FrameworkProfile:
    """How a framework maps a WDL workload onto the cluster.

    :param strategy: distribution strategy (see
        :class:`~repro.graph.builder.ExecutionPlan`).
    :param launch_scale: relative cost of the framework's op-dispatch
        path (TF 1.x graph executors with feature columns are the
        slowest; eager NCCL-based stacks dispatch leaner graphs).
    :param ps_bandwidth_factor: usable NIC fraction when talking to
        parameter servers (server-side congestion); 1.0 for collective
        strategies.
    :param io_overlap: whether the input pipeline prefetches.
    :param uses_nvlink: TF-PS routes everything through PS over
        PCIe/Ethernet, so NVLink stays dark (Fig. 12).
    """

    name: str
    strategy: str
    launch_scale: float
    ps_bandwidth_factor: float = 1.0
    ps_serving_rate: float = float("inf")
    net_stack_rate: float = float("inf")
    io_overlap: bool = True
    uses_nvlink: bool = True


#: TensorFlow 1.15 with asynchronous PS (one CPU PS, GPU workers).
TF_PS = FrameworkProfile(
    name="TF-PS", strategy="ps-async", launch_scale=1.35,
    ps_bandwidth_factor=0.50, ps_serving_rate=250e6,
    net_stack_rate=0.8e9,
    io_overlap=False, uses_nvlink=False)

#: PyTorch 1.8 hybrid: MP embeddings via AllToAll (NCCL), DP dense.
PYTORCH = FrameworkProfile(
    name="PyTorch", strategy="mp", launch_scale=0.50,
    net_stack_rate=3.0e9)

#: Horovod on PyTorch DDP: replicated tables, Allreduce gradients.
HOROVOD = FrameworkProfile(
    name="Horovod", strategy="dp", launch_scale=0.50,
    net_stack_rate=3.0e9)

#: Alibaba's in-house optimized XDL, synchronous PS mode.
XDL = FrameworkProfile(
    name="XDL", strategy="ps-sync", launch_scale=0.90,
    ps_bandwidth_factor=0.70, ps_serving_rate=600e6,
    net_stack_rate=1.5e9)

_PROFILES = {profile.name: profile
             for profile in (TF_PS, PYTORCH, HOROVOD, XDL)}


def framework_by_name(name: str) -> "Framework":
    """Instantiate a baseline by its paper name."""
    if name not in _PROFILES:
        raise KeyError(f"unknown framework {name!r}; "
                       f"expected one of {sorted(_PROFILES)}")
    return Framework(_PROFILES[name])


class Framework:
    """A baseline training framework: plans and simulates workloads."""

    def __init__(self, profile: FrameworkProfile,
                 stats: WorkloadStats | None = None,
                 cost: CostModel | None = None):
        self.profile = profile
        self.stats = stats or WorkloadStats()
        self.cost = cost or CostModel()

    @property
    def name(self) -> str:
        """The framework's display name."""
        return self.profile.name

    def plan(self, model: ModelSpec, cluster: ClusterSpec,
             batch_size: int) -> ExecutionPlan:
        """Build the framework's (unoptimized) execution plan."""
        profile = self.profile
        if not profile.uses_nvlink and cluster.node.nvlink is not None:
            # PS mode routes through host memory; NVLink is unused.
            from dataclasses import replace
            cluster = replace(cluster,
                              node=replace(cluster.node, nvlink=None))
        return ExecutionPlan(
            model=model,
            cluster=cluster,
            batch_size=batch_size,
            strategy=profile.strategy,
            groups=groups_per_field(model.dataset),
            fuse_kernels=False,
            interleave_sets=1,
            fine_grained_deps=False,
            micro_batches=1,
            cache_hit_ratio=None,
            io_overlap=profile.io_overlap,
            ps_bandwidth_factor=profile.ps_bandwidth_factor,
            ps_serving_rate=profile.ps_serving_rate,
            net_stack_rate=profile.net_stack_rate,
            launch_scale=profile.launch_scale,
            cost=self.cost,
        )

    def run(self, model: ModelSpec, cluster: ClusterSpec, batch_size: int,
            iterations: int = 3, record_tasks: bool = False,
            fault_plan=None) -> RunReport:
        """Simulate a training run under this framework."""
        plan = self.plan(model, cluster, batch_size)
        return simulate_plan(plan, iterations=iterations,
                             name=f"{self.name}/{model.name}",
                             record_tasks=record_tasks,
                             fault_plan=fault_plan)
