"""Fig. 10: training walltime of the four benchmark models."""

from conftest import run_once, show

from repro.experiments import fig10_walltime


def test_fig10_walltime(benchmark):
    rows = run_once(benchmark, fig10_walltime.run_walltime)
    show("Fig. 10 walltime (GPU core hours)", rows,
         fig10_walltime.paper_reference())
    speedups = fig10_walltime.speedups(rows)
    show("Fig. 10 speedups", speedups)
    benchmark.extra_info["speedups"] = {
        row["model"]: row["vs_tf_ps"] for row in speedups}

    by_key = {(row["model"], row["framework"]): row["ips"]
              for row in rows}
    for model in ("DLRM", "DeepFM", "DIN", "DIEN"):
        ips = {fw: by_key[(model, fw)]
               for fw in ("TF-PS", "PyTorch", "Horovod", "PICASSO")}
        # TF-PS slowest, PICASSO fastest (Fig. 10's ordering).
        assert min(ips, key=ips.get) == "TF-PS"
        assert max(ips, key=ips.get) == "PICASSO"
    for row in speedups:
        # "accelerates the training by at least 1.9x, and up to 10x".
        assert row["vs_best_baseline"] >= 1.5, row
        assert row["vs_tf_ps"] >= 1.5, row
