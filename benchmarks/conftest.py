"""Shared helpers for the benchmark suite.

Every benchmark runs its experiment once (simulations are
deterministic), records headline numbers in ``extra_info``, prints a
paper-vs-measured table, and asserts the paper's qualitative shape so
the suite doubles as a regression harness for the reproduction.
"""

from __future__ import annotations


from repro.experiments.common import format_table


def run_once(benchmark, func):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)


def show(title: str, rows: list, reference=None) -> None:
    """Print measured rows (and the paper's reference) to the log."""
    print(f"\n== {title} (measured) ==")
    if rows:
        print(format_table(rows, list(rows[0].keys())))
    if reference:
        print("-- paper reference --")
        if isinstance(reference, list) and reference \
                and isinstance(reference[0], dict):
            print(format_table(reference, list(reference[0].keys())))
        else:
            print(reference)
