"""Tab. IV: ablation study of packing / interleaving / caching."""

from conftest import run_once, show

from repro.experiments import tab04_ablation


def test_tab04_ablation(benchmark):
    rows = run_once(benchmark, tab04_ablation.run_ablation)
    show("Tab. IV ablation", rows, tab04_ablation.paper_reference())
    gains = tab04_ablation.contribution_percentages(rows)
    show("Tab. IV optimization contributions", gains)
    benchmark.extra_info["gains"] = {row["model"]: row for row in gains}

    by_key = {(row["model"], row["variant"]): row for row in rows}
    for model in ("W&D", "CAN", "MMoE"):
        full = by_key[(model, "PICASSO")]["ips"]
        # Removing any optimization costs throughput.
        for variant in ("w/o Packing", "w/o Interleaving", "w/o Caching"):
            assert by_key[(model, variant)]["ips"] <= full * 1.02, (
                model, variant)
    # MMoE benefits most from interleaving (paper: +93%), and caching
    # is its smallest contribution (paper: +6%).
    mmoe = {row["model"]: row for row in gains}["MMoE"]
    assert mmoe["interleaving_gain_pct"] >= mmoe["caching_gain_pct"]
