"""What-if replay extension: trace fidelity and auto-tuner quality.

The ROADMAP extension study behind ``repro.replay`` + ``repro.tuning``:
a frozen task trace re-timed under perturbed per-class cost models,
driving a search loop that proposes knob settings by prediction and
validates them with real runs.  The load-bearing claims: unperturbed
replay reproduces the engine makespan *exactly* (the admit-at-
completion invariant), a launch-cost perturbation moves only the
launch class, and coordinate descent keeps finding a >= 10% measured
winner whose replay prediction was within 15% of its real run.
"""

from conftest import run_once, show

from repro.bench.suite import bench_replay
from repro.experiments.autotune import run_autotune


def test_replay_fidelity_and_tuner(benchmark):
    def run():
        return bench_replay()

    snap = run_once(benchmark, run)
    metrics = snap.metrics
    show("replay: fidelity + coordinate-descent tuning",
         [{k: f"{v:.4g}" if isinstance(v, float) else v
           for k, v in metrics.items()}])
    benchmark.extra_info.update({
        "replay_exact": metrics["replay_exact"],
        "tuned_gain": metrics["tuned_gain"],
        "tuned_fidelity_error": metrics["tuned_fidelity_error"],
    })

    # The replayer's foundation: re-deriving the frozen DAG under
    # identity hooks lands on the engine's makespan to the bit.
    assert metrics["replay_exact"] == 1.0
    assert metrics["replay_makespan_s"] == metrics["makespan_s"]

    # Halving launch costs must shorten the run (this workload is
    # launch-bound enough to feel it) but never below half.
    assert 0.5 <= metrics["launch_half_ratio"] < 1.0

    # The acceptance bar: a real >= 10% winner, predicted within 15%.
    assert metrics["tuned_improved"] == 1.0
    assert metrics["tuned_gain"] >= 0.10
    assert abs(metrics["tuned_fidelity_error"]) <= 0.15


def test_strategies_all_improve(benchmark):
    def run():
        return run_autotune()

    rows = run_once(benchmark, run)
    show("replay: strategy comparison", rows)
    benchmark.extra_info.update(
        {f"gain[{row['strategy']}]": row["gain_pct"] for row in rows})

    # Every registered strategy finds a real improvement, and the
    # fully-measured legacy grid reports zero prediction error.
    by_name = {row["strategy"]: row for row in rows}
    for row in rows:
        assert float(row["gain_pct"]) > 0.0
    assert float(by_name["warmup-grid"]["fidelity_pct"]) == 0.0
