"""Fig. 12: PCIe and NVLink bandwidth consumption (DLRM)."""

from conftest import run_once, show

from repro.experiments import fig12_bandwidth


def test_fig12_bandwidth(benchmark):
    rows = run_once(benchmark, fig12_bandwidth.run_bandwidth)
    show("Fig. 12 bandwidth", rows, fig12_bandwidth.paper_reference())
    stats = {row["framework"]: row for row in rows}
    benchmark.extra_info["pcie_mean"] = {
        name: row["pcie_mean_gbps"] for name, row in stats.items()}

    # TF-PS never touches NVLink (PS mode bypasses peer links).
    assert stats["TF-PS"]["nvlink_mean_gbps"] == 0.0
    # The collective frameworks use NVLink.
    assert stats["PyTorch"]["nvlink_peak_gbps"] > 0.0
    assert stats["PICASSO"]["nvlink_peak_gbps"] > 0.0
    # PICASSO sustains at least as much NVLink traffic as the other
    # collective baselines (interleaved pipelines).
    assert (stats["PICASSO"]["nvlink_mean_gbps"]
            >= 0.5 * stats["Horovod"]["nvlink_mean_gbps"])
