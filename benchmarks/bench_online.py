"""Online-loop extension: hot-swap serving and staleness decay.

The ROADMAP extension study behind ``repro.online``: a streaming
trainer publishes embedding-delta snapshots while a replica serves a
flash crowd and hot-swaps to each publish mid-traffic.  The
load-bearing claims: swaps drop zero requests and hold served p99
within 10% of a no-swap replay of the same trace, delta snapshots are
>= 5x smaller than full checkpoints, and prequential AUC degrades
monotonically as the publish interval grows (staleness hurts under
drift).
"""

from conftest import run_once, show

from repro.bench.suite import bench_online
from repro.experiments.staleness_auc import (
    paper_reference,
    run_staleness_auc,
)


def test_hot_swap_holds_slo(benchmark):
    def run():
        return bench_online()

    snap = run_once(benchmark, run)
    metrics = snap.metrics
    show("online: flash crowd with hot swaps",
         [{k: f"{v:.4g}" if isinstance(v, float) else v
           for k, v in metrics.items()}])
    benchmark.extra_info.update({
        "goodput_qps": metrics["goodput_qps"],
        "p99_swap_ratio": metrics["p99_swap_ratio"],
        "swap_pause_p99_ms": metrics["swap_pause_p99_ms"],
        "delta_compression": metrics["delta_compression"],
    })

    # The loop actually looped: weights were published and swapped in
    # while the flash crowd was in flight.
    assert metrics["publishes"] >= 2
    assert metrics["swaps"] >= 1

    # Hot swaps are free at the tail: no request is shed because a
    # swap held the server, and p99 stays within 10% of the same
    # trace served without swaps.
    assert metrics["swap_attributed_shed"] == 0
    assert metrics["p99_ms"] <= 1.10 * metrics["p99_ms_noswap"]

    # Changed-rows-only snapshots beat full checkpoints >= 5x.
    assert metrics["delta_compression"] >= 5.0


def test_staleness_degrades_auc(benchmark):
    def run():
        return run_staleness_auc()

    rows = run_once(benchmark, run)
    show("online: prequential AUC vs publish interval", rows,
         reference=paper_reference())
    aucs = [float(row["auc"]) for row in rows]
    benchmark.extra_info.update(
        {f"auc[interval={row['publish_interval']}]": row["auc"]
         for row in rows})

    # Staler weights score worse under drift: AUC strictly decreases
    # as the publish interval grows, and even the stalest copy beats
    # chance.
    assert aucs == sorted(aucs, reverse=True)
    assert len(set(aucs)) == len(aucs)
    assert aucs[-1] > 0.5
