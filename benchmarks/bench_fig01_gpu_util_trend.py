"""Fig. 1: GPU utilization of PS-trained WDL model generations."""

from conftest import run_once, show

from repro.experiments import fig01_gpu_util


def test_fig01_gpu_util_trend(benchmark):
    rows = run_once(benchmark, fig01_gpu_util.run_gpu_util_trend)
    reference = fig01_gpu_util.paper_reference()
    show("Fig. 1 GPU utilization trend", rows, reference)
    benchmark.extra_info["utilization"] = {
        row["model"]: row["gpu_util_pct"] for row in rows}
    low, high = reference["band"]
    # The paper's point: PS training never gets WDL models anywhere
    # near the 95%+ a CV/NLP workload reaches.
    for row in rows:
        assert row["gpu_util_pct"] <= high, (
            f"{row['model']} exceeds the underutilization band")
