"""Fig. 3: skew of categorical-ID distributions across datasets."""

from conftest import run_once, show

from repro.experiments import fig03_distribution


def test_fig03_id_distribution(benchmark):
    rows = run_once(benchmark, fig03_distribution.run_id_distribution)
    reference = fig03_distribution.paper_reference()
    show("Fig. 3 ID distribution", rows, reference)
    benchmark.extra_info["coverage"] = {
        row["dataset"]: row["top20_coverage_pct"] for row in rows}
    low, high = reference["mean_band"]
    for row in rows:
        assert low <= row["top20_coverage_pct"] <= high, (
            f"{row['dataset']} coverage outside the paper's band")


def test_fig03_coverage_curve_monotone(benchmark):
    id_frac, data_frac = run_once(
        benchmark, fig03_distribution.run_coverage_curve)
    assert len(id_frac) == len(data_frac)
    # Coverage curves are nondecreasing and end at 100%.
    assert all(b >= a for a, b in zip(data_frac, data_frac[1:]))
    assert abs(data_frac[-1] - 1.0) < 1e-9
