"""Fig. 11: SM-utilization CDF while training DLRM."""

from conftest import run_once, show

from repro.experiments import fig11_sm_cdf


def test_fig11_sm_util_cdf(benchmark):
    results = run_once(benchmark, fig11_sm_cdf.run_sm_cdf)
    rows = fig11_sm_cdf.summary_rows(results)
    show("Fig. 11 SM-utilization CDF", rows,
         fig11_sm_cdf.paper_reference())
    benchmark.extra_info["median_util"] = {
        row["framework"]: row["median_util_pct"] for row in rows}

    stats = {row["framework"]: row for row in rows}
    # PICASSO has the least low-utilization mass of the four systems.
    picasso_low = stats["PICASSO"]["time_below_20pct_util"]
    for baseline in ("TF-PS", "PyTorch", "Horovod"):
        assert picasso_low <= stats[baseline]["time_below_20pct_util"]
    # And TF-PS shows the most stalls.
    assert stats["TF-PS"]["time_below_20pct_util"] >= picasso_low
