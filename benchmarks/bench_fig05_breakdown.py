"""Fig. 5: worker-side breakdown of the three production models."""

from conftest import run_once, show

from repro.experiments import fig05_breakdown


def test_fig05_breakdown(benchmark):
    rows = run_once(benchmark, fig05_breakdown.run_breakdown)
    show("Fig. 5 worker-side breakdown", rows,
         fig05_breakdown.paper_reference())
    by_key = {(row["model"], row["strategy"], row["category"]): row
              for row in rows}
    benchmark.extra_info["rows"] = len(rows)

    # CAN is the communication-intensive workload: under the
    # collective (MP) strategy its communication share leads, and under
    # PS its communication stays substantial.
    can_mp = by_key[("CAN", "MP", "communication")]["active_pct"]
    wd_mp = by_key[("W&D", "MP", "communication")]["active_pct"]
    assert can_mp >= wd_mp * 0.8
    assert by_key[("CAN", "PS", "communication")]["active_pct"] >= 10.0

    # MMoE is the computation-intensive workload.
    mmoe_compute = by_key[("MMoE", "MP", "compute")]["active_pct"]
    wd_compute = by_key[("W&D", "MP", "compute")]["active_pct"]
    assert mmoe_compute > wd_compute
