"""Tab. VII: twelve AUC-prediction models, XDL vs PICASSO."""

from conftest import run_once, show

from repro.experiments import tab07_twelve_models


def test_tab07_twelve_models(benchmark):
    rows = run_once(benchmark, tab07_twelve_models.run_twelve_models)
    show("Tab. VII twelve models", rows,
         tab07_twelve_models.paper_reference())
    benchmark.extra_info["ips_gain"] = {
        row["model"]: row["ips_gain_pct"] for row in rows}

    improved_ips = [row for row in rows if row["ips_gain_pct"] > 0]
    improved_sm = [row for row in rows if row["sm_gain_pct"] > 0]
    # PICASSO improves throughput and utilization across the zoo.
    assert len(improved_ips) >= 10, [r["model"] for r in rows
                                     if r["ips_gain_pct"] <= 0]
    assert len(improved_sm) >= 10
    # Every model sustains a larger batch via D-Interleaving.
    for row in rows:
        assert row["picasso_batch"] > row["xdl_batch"]
