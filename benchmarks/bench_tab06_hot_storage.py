"""Tab. VI: hit ratio and IPS by Hot-storage size."""

from conftest import run_once, show

from repro.experiments import tab06_hot_storage


def test_tab06_hot_storage(benchmark):
    rows = run_once(benchmark, tab06_hot_storage.run_hot_storage_sweep)
    show("Tab. VI hot-storage sweep", rows,
         tab06_hot_storage.paper_reference())
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["hot_storage"]] = row
    benchmark.extra_info["hit_ratios"] = {
        model: {size: row["hit_ratio_pct"]
                for size, row in series.items()}
        for model, series in by_model.items()}

    order = ["256MB", "512MB", "1GB", "2GB", "4GB"]
    for model, series in by_model.items():
        hits = [series[size]["hit_ratio_pct"] for size in order]
        # Hit ratio grows with cache size (1.5pp sampling tolerance)...
        assert all(b >= a - 1.5 for a, b in zip(hits, hits[1:])), \
            (model, hits)
        # ...with a marginal effect: the 2GB->4GB gain is smaller than
        # the 256MB->512MB gain.
        assert hits[4] - hits[3] <= hits[1] - hits[0] + 1.0, (model, hits)
        # An oversized cache squeezes the batch, so 4GB throughput
        # stays close to the 1GB default instead of scaling with its
        # hit ratio (the paper measures -3..+2%; our laptop-scale
        # vocabularies keep a little more headroom - see
        # EXPERIMENTS.md).
        assert series["4GB"]["ips"] <= series["1GB"]["ips"] * 1.20
