"""Shard-placement extension: skew-aware planning vs hash sharding.

The ROADMAP extension study behind ``repro.embedding.placement``: the
same seeded bounded-Zipf traffic priced under hash ownership and under
the planner's replicate/dedicate/LPT placement.  The load-bearing
claims: hash imbalance grows with skew and worker count, planned
placement holds the measured max/mean shard-bytes ratio near 1.0
everywhere, and the acceptance cell (Zipf(1.2), 8 workers) clears the
>= 25% ratio cut the ``shards`` bench baseline gates in CI.
"""

from conftest import run_once, show

from repro.experiments.shard_placement import (
    SKEWS,
    WORKER_COUNTS,
    run_shard_placement,
)


def test_planned_placement_rebalances_exchange(benchmark):
    def run():
        return run_shard_placement()

    rows = run_once(benchmark, run)
    show("shards: skew x workers x policy", rows)
    cells = {(row["skew"], row["workers"]): row for row in rows}
    benchmark.extra_info.update(
        {f"ratio_cut[skew={skew},w={workers}]":
         cells[(f"{skew:g}", workers)]["ratio_cut_pct"]
         for skew in SKEWS for workers in WORKER_COUNTS})

    # Hash imbalance grows with worker count at every skew: the same
    # hot head spreads over more shards, so the gating shard stands
    # out more.
    for skew in SKEWS:
        ratios = [cells[(f"{skew:g}", workers)]["hash_ratio"]
                  for workers in WORKER_COUNTS]
        assert ratios == sorted(ratios)

    # Planned placement holds every cell near balance.
    assert all(row["planned_ratio"] <= 1.1 for row in rows)

    # The acceptance cell: Zipf(1.2) x 8 workers cuts the max/mean
    # exchange ratio by >= 25% (ISSUE 5 bar, also gated by the
    # committed BENCH_shards.json baseline).
    assert cells[("1.2", 8)]["ratio_cut_pct"] >= 25.0

    # Replication only ever removes exchange traffic, so the planned
    # max bytes must drop in every cell.
    assert all(row["max_bytes_cut_pct"] > 0 for row in rows)
