"""Tab. V: operation counts, baseline vs PICASSO."""

from conftest import run_once, show

from repro.experiments import tab05_op_counts


def test_tab05_op_counts(benchmark):
    rows = run_once(benchmark, tab05_op_counts.run_op_counts)
    show("Tab. V operation counts", rows,
         tab05_op_counts.paper_reference())
    benchmark.extra_info["ops_pct"] = {
        row["model"]: row["ops_pct"] for row in rows}

    for row in rows:
        # Packing dramatically reduces framework operations...
        assert row["picasso_ops"] < row["baseline_ops"]
        # ...and collapses hundreds of per-field embeddings into a
        # handful of packed embeddings (paper: 16/19/11).
        assert row["picasso_packed_emb"] < row["baseline_packed_emb"] / 4
        assert row["picasso_packed_emb"] >= 2
    by_model = {row["model"]: row for row in rows}
    # W&D's reduction ratio matches the paper's 14.9% closely.
    assert by_model["W&D"]["ops_pct"] < 35.0
