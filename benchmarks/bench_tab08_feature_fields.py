"""Tab. VIII: IPS while multiplying the number of feature fields."""

from conftest import run_once, show

from repro.experiments import tab08_feature_fields


def test_tab08_feature_fields(benchmark):
    rows = run_once(benchmark,
                    tab08_feature_fields.run_feature_field_sweep)
    show("Tab. VIII feature-field sweep", rows,
         tab08_feature_fields.paper_reference())
    benchmark.extra_info["picasso_vs_ap"] = {
        row["fields_multiple"]: row["picasso_vs_ap_pct"] for row in rows}

    widest = rows[-1]
    # At the widest point, PICASSO tracks (or beats) the arithmetic-
    # progression prediction while the PS baseline falls below it.
    assert widest["picasso_vs_ap_pct"] >= widest["xdl_vs_ap_pct"], widest
    assert widest["xdl_vs_ap_pct"] <= 2.0, widest
    # Throughput decreases with field multiples for both systems.
    picasso = [row["picasso_ips"] for row in rows]
    assert all(b < a for a, b in zip(picasso, picasso[1:]))
