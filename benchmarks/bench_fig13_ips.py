"""Fig. 13: production IPS — PS vs PICASSO(Base) vs PICASSO."""

from conftest import run_once, show

from repro.experiments import fig13_ips


def test_fig13_production_ips(benchmark):
    rows = run_once(benchmark, fig13_ips.run_production_ips)
    show("Fig. 13 production IPS", rows, fig13_ips.paper_reference())
    accel = fig13_ips.accelerations(rows)
    show("Fig. 13 accelerations", accel)
    benchmark.extra_info["acceleration"] = {
        row["model"]: row["picasso_vs_ps"] for row in accel}

    by_key = {(row["model"], row["system"]): row["ips"] for row in rows}
    for model in ("W&D", "CAN", "MMoE"):
        # Full PICASSO beats both the PS baseline and the bare hybrid
        # strategy: the gains come from the software optimizations.
        assert by_key[(model, "PICASSO")] > by_key[(model, "TF-PS")]
        assert (by_key[(model, "PICASSO")]
                > by_key[(model, "PICASSO(Base)")])
    # CAN and MMoE see the larger accelerations (paper: ~4x).
    gains = {row["model"]: row["picasso_vs_ps"] for row in accel}
    assert gains["CAN"] >= 1.5
    assert gains["MMoE"] >= 1.5
