"""Ablations of the reproduction's own design choices (DESIGN.md SS5).

These are not paper tables: they probe the cost-model mechanisms the
simulator's conclusions rest on, so a regression in one of them warns
that a headline reproduction may have lost its explanatory mechanism.

* launch-path serialization: fragmentary graphs must be launch-bound;
* kernel fusion must trade launch time, not hardware work;
* fine-grained dependencies (vs a global concat barrier) must matter;
* the interleaving pipeline must actually overlap comm with compute.
"""

from conftest import run_once, show

from repro.core import PicassoConfig, PicassoExecutor
from repro.data import criteo, product2
from repro.graph import fusion_report
from repro.graph.builder import (
    ExecutionPlan,
    IterationGraphBuilder,
    groups_per_field,
)
from repro.hardware import eflops_cluster
from repro.models import can, dlrm
from repro.sim.engine import Engine, build_node_resources


def _baseline_plan(model, cluster, batch):
    return ExecutionPlan(model=model, cluster=cluster, batch_size=batch,
                         strategy="mp",
                         groups=groups_per_field(model.dataset))


def test_launch_slots_sensitivity(benchmark):
    """Fragmentary graphs speed up with dispatch parallelism."""
    model = dlrm(criteo(0.01))
    cluster = eflops_cluster(4)
    plan = _baseline_plan(model, cluster, 4096)
    graph = IterationGraphBuilder(plan).build(2)

    def run():
        results = {}
        for slots in (1, 2, 4, 8):
            resources = build_node_resources(cluster.node,
                                             launch_slots=slots)
            tasks = graph.to_sim_tasks(plan.cost.launch_per_micro_op)
            results[slots] = Engine(resources).run(tasks).makespan
        return results

    results = run_once(benchmark, run)
    rows = [{"launch_slots": slots, "makespan_ms": round(span * 1e3, 1)}
            for slots, span in results.items()]
    show("design ablation: launch slots", rows)
    assert results[1] > results[4]  # dispatch parallelism helps
    # Rebuild tasks each round: graph reuse would corrupt indegrees.


def test_fusion_trades_launch_not_hardware_work(benchmark):
    """K-Packing saves micro-ops while conserving phase work."""
    model = dlrm(criteo(0.01))
    plan = _baseline_plan(model, eflops_cluster(4), 4096)
    graph = IterationGraphBuilder(plan).build(1)
    report = run_once(benchmark, lambda: fusion_report(graph))
    show("design ablation: generic fusion", [report])
    assert report["ops_after"] < report["ops_before"]
    assert report["micro_ops_after"] < report["micro_ops_before"]


def test_fine_grained_deps_matter(benchmark):
    """Removing the global concat barrier must help (or not hurt)."""
    model = can(product2(0.02))
    cluster = eflops_cluster(8)

    def run():
        coarse = PicassoConfig(micro_batches=1, interleave_sets=3)
        executor = PicassoExecutor(model, cluster, coarse)
        plan = executor.plan(8192)
        plan.fine_grained_deps = False
        from repro.core.executor import simulate_plan
        barrier = simulate_plan(plan, iterations=2)
        plan2 = executor.plan(8192)
        plan2.fine_grained_deps = True
        fine = simulate_plan(plan2, iterations=2)
        return {"barrier_ips": round(barrier.ips),
                "fine_grained_ips": round(fine.ips)}

    result = run_once(benchmark, run)
    show("design ablation: fine-grained deps", [result])
    assert result["fine_grained_ips"] >= result["barrier_ips"] * 0.95


def test_pipeline_overlap_is_real(benchmark):
    """With interleaving, comm must overlap compute (low exposure)."""
    model = can(product2(0.02))
    cluster = eflops_cluster(8)

    def run():
        full = PicassoExecutor(model, cluster).run(8192, iterations=2)
        flat = PicassoExecutor(
            model, cluster,
            PicassoConfig().without("interleaving")).run(8192,
                                                         iterations=2)
        return {
            "interleaved_comm_exposed_pct": round(
                full.breakdown["communication"]["exposed"] * 100, 1),
            "flat_comm_exposed_pct": round(
                flat.breakdown["communication"]["exposed"] * 100, 1),
        }

    result = run_once(benchmark, run)
    show("design ablation: pipeline overlap", [result])
    assert result["interleaved_comm_exposed_pct"] \
        <= result["flat_comm_exposed_pct"] + 2.0
