"""Tab. X: walltime to train a year of data, by model scale."""

from conftest import run_once, show

from repro.experiments import tab10_model_scale


def test_tab10_model_scale(benchmark):
    rows = run_once(benchmark, tab10_model_scale.run_model_scale)
    show("Tab. X model-scale walltime", rows,
         tab10_model_scale.paper_reference())
    benchmark.extra_info["speedup"] = {
        row["scale"]: row["speedup"] for row in rows}

    # PICASSO wins at every scale tier.
    for row in rows:
        assert row["picasso_gpu_hours"] < row["xdl_gpu_hours"], row
    # Walltime grows with model scale for both systems.
    xdl = [row["xdl_gpu_hours"] for row in rows]
    picasso = [row["picasso_gpu_hours"] for row in rows]
    assert xdl == sorted(xdl)
    assert picasso == sorted(picasso)
