"""Run-health monitors on the paper's workloads (Fig. 4/5, Eq. 3).

The pulse detector must see the baseline frameworks' alternating
memory-bound / compute-bound utilization pulses (the Fig. 4/5 sawtooth
PICASSO sets out to flatten), and the overlap monitor must measure a
strictly higher comm/compute overlap ratio with K-Interleaving on than
off — the observable consequence of Eq. 3's pipelining.
"""

from conftest import run_once, show

from repro.experiments import monitor_health


def test_baseline_pulses_alternate(benchmark):
    rows = run_once(benchmark, monitor_health.run_monitor_health)
    show("Run-health monitors (W&D, Product-1)", rows,
         reference="Fig. 4/5: baselines pulse between embedding "
                   "(memory) and dense (compute) stages; PICASSO "
                   "flattens the sawtooth.")
    by_framework = {row["framework"]: row for row in rows}
    for framework in ("TF-PS", "PyTorch"):
        row = by_framework[framework]
        mem, compute, _idle = map(int, row["mem/compute/idle"].split("/"))
        assert mem >= 1, framework
        assert compute >= 1, framework
        assert row["alternations"] >= 2, framework
    benchmark.extra_info["rows"] = rows


def test_interleaving_raises_overlap_ratio(benchmark):
    rows = run_once(benchmark, monitor_health.run_overlap_ablation)
    show("Overlap-ratio ablation (Eq. 3)", rows,
         reference="K-Interleaving hides communication behind other "
                   "groups' compute, so the measured overlap ratio "
                   "must rise when it is enabled.")
    by_mode = {row["variant"]: row for row in rows}
    ratio_on = float(
        by_mode["interleaving on"]["overlap"].rstrip("%")) / 100.0
    ratio_off = float(
        by_mode["interleaving off"]["overlap"].rstrip("%")) / 100.0
    assert ratio_on > ratio_off
    benchmark.extra_info["overlap_on"] = ratio_on
    benchmark.extra_info["overlap_off"] = ratio_off
