"""Serving extension: latency-throughput under cache hierarchies.

The ROADMAP extension study: replay one Poisson/Zipf request trace
through the online serving path under different embedding-cache
hierarchies and batcher settings.  The load-bearing claim is that the
hardware tier model drives tail latency: p99 must be *strictly*
ordered by hierarchy speed (all-HBM < HBM->DRAM < DRAM-only) on the
same trace, and bigger batches must trade latency for per-request
efficiency.
"""

from conftest import run_once, show

from repro.experiments.serving_latency import (
    run_batcher_sweep,
    run_cache_sweep,
)


def test_p99_ordered_by_tier_speed(benchmark):
    def run():
        return run_cache_sweep(num_requests=4_000, seed=0)

    rows = run_once(benchmark, run)
    show("serving: cache hierarchy sweep", rows)
    p99 = {row["cache"]: float(row["p99_ms"]) for row in rows}
    benchmark.extra_info.update(
        {f"p99_ms[{name}]": value for name, value in p99.items()})

    # The tier model is load-bearing: same trace, same batcher, same
    # SLO — only storage placement differs, and p99 follows it.
    assert p99["all-HBM"] < p99["HBM->DRAM"] < p99["DRAM-only"]
    # Nothing sheds in the three DRAM-or-faster configs at this rate.
    for row in rows:
        if row["cache"] != "HBM->DRAM->SSD":
            assert row["shed"] == 0


def test_latency_throughput_tradeoff(benchmark):
    def run():
        return run_batcher_sweep(num_requests=4_000, seed=0)

    rows = run_once(benchmark, run)
    show("serving: batcher sweep", rows)
    p50 = [float(row["p50_ms"]) for row in rows]
    benchmark.extra_info.update(
        {f"p50_ms[batch={row['batch_max']}]": float(row["p50_ms"])
         for row in rows})

    # Larger batch/deadline settings accumulate longer -> higher p50.
    assert p50 == sorted(p50)
    # All settings keep up with the offered load (no shedding), so the
    # trade is purely batching delay vs per-request launch overhead.
    assert all(row["shed_rate"] == "0.00%" for row in rows)
