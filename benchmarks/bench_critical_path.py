"""Critical-path profiling via the run facade (`repro.api.profile`).

Profiles the paper's headline workload (W&D on Product-1, EFLOPS-16)
and checks that the top-10 critical-path entries explain >= 90% of the
makespan — the attribution quality the `repro profile` command reports.
"""

from conftest import run_once, show

from repro.api import RunConfig, profile


def test_critical_path_attribution(benchmark):
    config = RunConfig()  # W&D / Product-1 / eflops:16 / PICASSO
    result = run_once(benchmark, lambda: profile(config))
    report = result.critical_path

    rows = [{
        "rank": rank,
        "op": entry.label,
        "ms": f"{entry.seconds * 1e3:.3f}",
        "share": f"{entry.share:.1%}",
        "class": entry.dominant_class,
    } for rank, entry in enumerate(report.top(), start=1)]
    show("Critical path (W&D, EFLOPS-16)", rows)

    benchmark.extra_info["makespan_s"] = report.makespan
    benchmark.extra_info["coverage_top10"] = report.coverage(10)
    benchmark.extra_info["class_seconds"] = dict(report.class_seconds)

    assert report.makespan > 0
    assert report.coverage(10) >= 0.90
    # The ranking and the class attribution both partition path time.
    total = sum(report.class_seconds.values())
    assert abs(total - report.makespan) < 1e-6 * max(1.0, report.makespan)
