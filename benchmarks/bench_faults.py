"""Fault-tolerance extension: recovery goodput and degraded serving.

The ROADMAP extension study behind ``repro.faults``: inject a
deterministic crash schedule into real training and replay the same
model through checkpoint-restore recovery.  The load-bearing claims:
goodput strictly degrades with crash rate when recovery is off, the
best checkpoint interval recovers >= 90% of crash-free goodput, and a
crashed-and-resumed run reproduces the uncrashed loss trajectory
bitwise (the ``trajectory`` column).
"""

from conftest import run_once, show

from repro.experiments.fault_recovery import (
    CKPT_INTERVALS,
    CRASH_RATES,
    run_fault_recovery,
)


def test_recovery_off_goodput_degrades(benchmark):
    def run():
        return run_fault_recovery()

    rows = run_once(benchmark, run)
    show("faults: crash rate x checkpoint interval", rows)
    off = [float(row["goodput"]) for row in rows
           if row["ckpt_interval"] == 0]
    benchmark.extra_info.update(
        {f"goodput[rate={rate}]": value
         for rate, value in zip(CRASH_RATES, off)})

    # Without checkpoints every crash restarts from scratch, so each
    # extra crash strictly eats wall time.
    assert off == sorted(off, reverse=True)
    assert len(set(off)) == len(off)

    # Recovery pays: at every nonzero crash rate, the best checkpoint
    # interval keeps >= 90% of the crash-free goodput.
    crash_free = off[0]
    for rate in CRASH_RATES[1:]:
        best = max(float(row["goodput"]) for row in rows
                   if row["crash_rate"] == f"{rate:g}"
                   and row["ckpt_interval"] != 0)
        assert best >= 0.9 * crash_free

    # The recovery guarantee: every run (crashed or not, any interval)
    # replays the exact crash-free loss trajectory.
    assert all(row["trajectory"] == "exact" for row in rows)
    assert set(row["ckpt_interval"] for row in rows) \
        <= set(CKPT_INTERVALS)
