"""Fig. 14: throughput vs interleaving groups and micro-batches."""

from conftest import run_once, show

from repro.experiments import fig14_interleaving


def test_fig14_interleave_groups(benchmark):
    rows = run_once(benchmark, fig14_interleaving.run_interleave_groups)
    show("Fig. 14 interleaving groups", rows,
         fig14_interleaving.paper_reference())
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["interleave_groups"]] \
            = row["ips"]
    benchmark.extra_info["series"] = by_model
    # Communication-heavy models benefit from interleaving groups:
    # some group count > 1 beats no interleaving.
    for model in ("W&D", "CAN"):
        series = by_model[model]
        assert max(series[count] for count in series if count > 1) \
            >= series[1] * 0.95, model


def test_fig14_micro_batches(benchmark):
    rows = run_once(benchmark, fig14_interleaving.run_micro_batches)
    show("Fig. 14 micro-batches", rows)
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["micro_batches"]] \
            = row["ips"]
    benchmark.extra_info["series"] = by_model
    # Compute-intensive models gain from micro-batching (paper: CAN
    # and MMoE meet GPU saturation with more micro-batches).
    for model in ("CAN", "MMoE"):
        series = by_model[model]
        best = max(series.values())
        assert best > series[1], (model, series)
