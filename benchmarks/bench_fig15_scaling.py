"""Fig. 15: scaling out from 1 to 128 PICASSO-Executors."""

from conftest import run_once, show

from repro.experiments import fig15_scaling


def test_fig15_scaling(benchmark):
    rows = run_once(benchmark, fig15_scaling.run_scaling)
    show("Fig. 15 scaling out", rows, fig15_scaling.paper_reference())
    efficiency = fig15_scaling.scaling_efficiency(rows)
    show("Fig. 15 scaling efficiency", efficiency)
    eff = {row["model"]: row["efficiency_pct"] for row in efficiency}
    benchmark.extra_info["efficiency"] = eff

    # Cluster throughput grows monotonically with workers.
    by_model: dict = {}
    for row in rows:
        by_model.setdefault(row["model"], []).append(
            (row["workers"], row["cluster_ips"]))
    for model, series in by_model.items():
        series.sort()
        values = [ips for _workers, ips in series]
        assert all(b > a * 1.2 for a, b in zip(values, values[1:])), model
    # All three models keep healthy scale-out efficiency at 128
    # workers (the paper reports near-linear CAN/MMoE and sublinear
    # W&D; in our cost model W&D's PCIe-bound iterations are scale-
    # invariant, so its curve is flatter - see EXPERIMENTS.md).
    for model, value in eff.items():
        assert value >= 60.0, (model, value)
