"""Extension ablation: HybridHash vs the multi-level cache hierarchy.

Paper SS III-D notes HybridHash "can be extended to a multiple-level
cache system, including Intel persistent memory and SSD".  This bench
runs both caches over the same skewed ID stream and verifies the
extension's value: with a DRAM-sized middle tier, the share of lookups
that fall through to the slowest storage collapses, and the modeled
access cost drops accordingly.
"""

from conftest import run_once, show

from repro.data.spec import FieldSpec
from repro.data.synthetic import FieldSampler
from repro.embedding import CacheTier, EmbeddingTable, HybridHash
from repro.embedding.multilevel import MultiLevelCache


def _field():
    return FieldSpec(name="f", vocab_size=300_000, embedding_dim=8,
                     zipf_exponent=1.2)


def test_multilevel_vs_two_level(benchmark):
    field = _field()
    row_bytes = field.embedding_dim * 4
    hot_rows = 2_000
    warm_rows = 120_000

    def run():
        # Two-level HybridHash: hot GPU scratchpad over DRAM.
        sampler = FieldSampler(field, seed=9)
        two_level = HybridHash(EmbeddingTable(dim=field.embedding_dim),
                               hot_bytes=hot_rows * row_bytes,
                               warmup_iters=10, flush_iters=10)
        for _step in range(60):
            two_level.lookup(sampler.sample_batch(512))

        # Multi-level: the same hot tier + a warm tier + slow storage.
        sampler = FieldSampler(field, seed=9)
        multi = MultiLevelCache(
            EmbeddingTable(dim=field.embedding_dim),
            tiers=(
                CacheTier("hbm", hot_rows * row_bytes, 1.0 / 800e9),
                CacheTier("dram", warm_rows * row_bytes, 1.0 / 80e9),
                CacheTier("ssd", float("inf"), 1.0 / 2e9),
            ),
            warmup_iters=10, flush_iters=10)
        for _step in range(60):
            multi.lookup(sampler.sample_batch(512))

        fractions = multi.hit_fractions()
        return {
            "hybridhash_hot_hit_pct": round(
                two_level.stats.hit_ratio * 100, 1),
            "multi_hbm_pct": round(fractions["hbm"] * 100, 1),
            "multi_dram_pct": round(fractions["dram"] * 100, 1),
            "multi_ssd_pct": round(fractions["ssd"] * 100, 1),
        }

    result = run_once(benchmark, run)
    show("extension: multi-level cache", [result])
    benchmark.extra_info.update(result)

    # Note: HybridHash counts hits per occurrence while the multi-level
    # cache counts per unique ID, so the hot columns are not directly
    # comparable; the extension's claim is about the *tail*.
    assert result["multi_hbm_pct"] > 25.0
    # The cached tiers together outweigh the slow-storage tail (which,
    # in a streaming workload, is dominated by never-seen-before IDs
    # that no cache can hold yet).
    cached = result["multi_hbm_pct"] + result["multi_dram_pct"]
    assert cached > result["multi_ssd_pct"]
    assert result["multi_ssd_pct"] < 50.0


def test_access_cost_improves_with_tiers(benchmark):
    field = _field()
    row_bytes = field.embedding_dim * 4

    def run():
        sampler = FieldSampler(field, seed=11)
        flat = MultiLevelCache(
            EmbeddingTable(dim=field.embedding_dim),
            tiers=(CacheTier("ssd", float("inf"), 1.0 / 2e9),),
            warmup_iters=5, flush_iters=5)
        tiered = MultiLevelCache(
            EmbeddingTable(dim=field.embedding_dim),
            tiers=(
                CacheTier("hbm", 2_000 * row_bytes, 1.0 / 800e9),
                CacheTier("dram", 120_000 * row_bytes, 1.0 / 80e9),
                CacheTier("ssd", float("inf"), 1.0 / 2e9),
            ),
            warmup_iters=5, flush_iters=5)
        probe = None
        for _step in range(30):
            probe = sampler.sample_batch(512)
            flat.lookup(probe)
            tiered.lookup(probe)
        return {
            "flat_cost_us": round(
                flat.expected_access_cost(probe) * 1e6, 2),
            "tiered_cost_us": round(
                tiered.expected_access_cost(probe) * 1e6, 2),
        }

    result = run_once(benchmark, run)
    show("extension: tiered access cost", [result])
    assert result["tiered_cost_us"] < result["flat_cost_us"]
