"""Tab. III: AUC parity of PICASSO with the synchronous baselines."""

from conftest import run_once, show

from repro.experiments import tab03_auc


def test_tab03_auc(benchmark):
    rows = run_once(benchmark, tab03_auc.run_auc)
    show("Tab. III AUC", rows, tab03_auc.paper_reference())
    by_key = {(row["model"], row["system"]): row["auc"] for row in rows}
    benchmark.extra_info["auc"] = {
        f"{model}/{system}": auc
        for (model, system), auc in by_key.items()}

    for model in ("DLRM", "DeepFM", "DIN", "DIEN"):
        picasso = by_key[(model, "PICASSO")]
        pytorch = by_key[(model, "PyTorch")]
        horovod = by_key[(model, "Horovod")]
        tf_ps = by_key[(model, "TF-PS")]
        # Synchronous systems agree closely despite batch differences.
        assert abs(picasso - pytorch) < 0.03
        assert abs(picasso - horovod) < 0.03
        # Async PS (stale gradients) does not beat PICASSO meaningfully.
        assert tf_ps <= picasso + 0.01
        # Every system actually learned (AUC above chance).
        assert picasso > 0.55
