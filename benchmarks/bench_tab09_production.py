"""Tab. IX: production deployment summary, XDL vs PICASSO."""

from conftest import run_once, show

from repro.experiments import tab09_production


def test_tab09_production(benchmark):
    rows = run_once(benchmark, tab09_production.run_production_summary)
    show("Tab. IX production summary", rows,
         tab09_production.paper_reference())
    stats = {row["system"]: row for row in rows}
    benchmark.extra_info["walltime_h"] = {
        name: row["avg_task_walltime_h"] for name, row in stats.items()}

    # PICASSO shortens the average daily task substantially (paper:
    # 8.6h -> 1.4h, ~6x)...
    speedup = (stats["XDL"]["avg_task_walltime_h"]
               / stats["PICASSO"]["avg_task_walltime_h"])
    assert speedup >= 1.5, speedup
    # ...while raising utilization and bandwidth.
    assert stats["PICASSO"]["sm_util_pct"] > stats["XDL"]["sm_util_pct"]
    assert (stats["PICASSO"]["bandwidth_gbps"]
            > stats["XDL"]["bandwidth_gbps"])
