"""Distributed training semantics: sync equivalence and PS staleness.

Demonstrates the two facts Tab. III rests on, with real numpy training:

1. Synchronous data parallelism over W workers is mathematically the
   same optimization as single-worker training on the combined batch.
2. Asynchronous PS training applies stale gradients; accuracy degrades
   gracefully with the in-flight window.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.distributed import (
    DataParallelTrainer,
    ParameterServer,
    PsWorkerTrainer,
)
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad
from repro.training import evaluate


def _dataset():
    return DatasetSpec(name="demo", num_numeric=2, fields=(
        FieldSpec(name="a", vocab_size=5000, embedding_dim=8,
                  zipf_exponent=1.1),
        FieldSpec(name="b", vocab_size=5000, embedding_dim=8,
                  zipf_exponent=1.1),
    ))


def sync_equivalence() -> None:
    dataset = _dataset()
    batch = LabeledBatchIterator(dataset, 64, seed=0).next_batch()

    single = WdlNetwork(dataset, variant="wdl", seed=0)
    single.train_step(batch, Adagrad(lr=0.05))

    replica = WdlNetwork(dataset, variant="wdl", seed=0)
    DataParallelTrainer(replica, workers=4,
                        optimizer=Adagrad(lr=0.05)).train_step(batch)

    diffs = [np.abs(value - dict(replica.parameters())[name][0]).max()
             for name, (value, _grad) in single.parameters().items()]
    print("sync DP vs single-worker: max dense-parameter diff "
          f"= {max(diffs):.2e} (identical up to float error)")


def staleness_sweep() -> None:
    dataset = _dataset()
    print("\nasync PS accuracy vs in-flight window (60 steps):")
    print(f"{'inflight':>9s} {'AUC':>8s} {'max staleness':>14s}")
    for inflight in (0, 2, 6):
        server = ParameterServer(
            WdlNetwork(dataset, variant="wdl", seed=0), Adagrad(lr=0.05))
        worker = PsWorkerTrainer(server, inflight=inflight)
        iterator = LabeledBatchIterator(dataset, 512, noise_scale=0.4,
                                        seed=0)
        for batch in iterator.batches(60):
            worker.train_step(batch)
        worker.drain()
        eval_iter = LabeledBatchIterator(dataset, 512, noise_scale=0.4,
                                         seed=77)
        auc, _ll = evaluate(server.network, eval_iter, batches=8)
        staleness = max(worker.observed_staleness, default=0)
        print(f"{inflight:>9d} {auc:>8.4f} {staleness:>14d}")


if __name__ == "__main__":
    sync_equivalence()
    staleness_sweep()
