"""Train a real CTR model and measure AUC (Tab. III, laptop scale).

Trains a numpy DLRM on a Criteo-like synthetic stream with a hidden
logistic ground truth, comparing the synchronous trajectory (PICASSO /
PyTorch / Horovod are mathematically identical) with asynchronous PS
training (stale gradients, TF-PS).

Run:  python examples/train_ctr_model.py
"""

from repro.experiments.common import mini_criteo
from repro.training import train_and_evaluate


def main() -> None:
    dataset = mini_criteo(vocab=8_000)
    print(f"dataset: {dataset.name} ({dataset.num_fields} sparse fields "
          f"+ {dataset.num_numeric} numeric)\n")

    print("training DLRM, synchronous (PICASSO trajectory)...")
    sync = train_and_evaluate(dataset, "dlrm", mode="sync", steps=180,
                              batch_size=2048, noise_scale=0.3,
                              signal_scale=1.75)
    print(f"  loss {sync.losses[0]:.4f} -> {sync.final_loss:.4f}  "
          f"AUC {sync.auc:.4f}  logloss {sync.logloss:.4f}")

    print("training DLRM, async PS (stale gradients, TF-PS)...")
    async_ps = train_and_evaluate(dataset, "dlrm", mode="async-ps",
                                  steps=180, batch_size=2048,
                                  noise_scale=0.3, signal_scale=1.75,
                                  staleness=2)
    print(f"  loss {async_ps.losses[0]:.4f} -> {async_ps.final_loss:.4f}  "
          f"AUC {async_ps.auc:.4f}  logloss {async_ps.logloss:.4f}")

    gap = sync.auc - async_ps.auc
    print(f"\nsync - async AUC gap: {gap:+.4f} "
          "(paper Tab. III: async TF-PS trails by ~0.0001-0.0005)")


if __name__ == "__main__":
    main()
