"""Quickstart: accelerate one WDL workload with PICASSO.

Builds the paper's W&D production workload (Product-1, 204 feature
fields), plans it with packing + interleaving + caching, simulates a
few training iterations on a 16-node V100 cluster, and prints the
metrics the paper reports (IPS, SM utilization, PCIe/network traffic).

Run:  python examples/quickstart.py
"""

from repro.core import PicassoConfig, PicassoExecutor
from repro.data import product1
from repro.hardware import eflops_cluster
from repro.models import wide_deep


def main() -> None:
    dataset = product1()
    model = wide_deep(dataset)
    cluster = eflops_cluster(num_nodes=16)

    executor = PicassoExecutor(model, cluster, PicassoConfig())
    plan = executor.plan(batch_size=20_000)
    print(f"model: {model.name} on {dataset.name} "
          f"({dataset.num_fields} fields, "
          f"{dataset.total_parameters:.3g} embedding parameters)")
    print(f"plan: {len(plan.groups)} packed embeddings, "
          f"{plan.interleave_sets} interleave sets, "
          f"{plan.micro_batches} micro-batches, "
          f"cache hit ratio {plan.cache_hit_ratio:.1%}")

    report = executor.run(batch_size=20_000, iterations=3)
    print(f"\nthroughput: {report.ips:,.0f} instances/s per worker "
          f"({report.seconds_per_iteration * 1000:.0f} ms/iteration)")
    print(f"GPU SM utilization: {report.sm_utilization:.0%}")
    print(f"PCIe: {report.pcie_gbps:.2f} GB/s   "
          f"network: {report.net_gbps:.2f} Gbps")
    print(f"framework operations per iteration: {report.micro_ops:,}")

    baseline = PicassoExecutor(model, cluster, PicassoConfig.base())
    base_report = baseline.run(batch_size=20_000, iterations=3)
    speedup = report.ips / base_report.ips
    print("\nvs PICASSO(Base) (hybrid strategy, no optimization): "
          f"{speedup:.2f}x")


if __name__ == "__main__":
    main()
