"""Ablate PICASSO's optimizations on a production workload (Tab. IV).

Runs CAN (the communication-intensive Product-2 workload) with each of
packing / interleaving / caching disabled in turn and prints the
contribution of each optimization.

Run:  python examples/production_ablation.py
"""

from repro.core import PicassoConfig, PicassoExecutor
from repro.data import product2
from repro.hardware import eflops_cluster
from repro.models import can


def main() -> None:
    model = can(product2())
    cluster = eflops_cluster(num_nodes=16)
    batch = 12_000
    print(f"CAN on Product-2: {model.dataset.num_fields} fields, "
          f"{model.num_modules} interaction module instances\n")

    variants = {
        "PICASSO": PicassoConfig(),
        "w/o packing": PicassoConfig().without("packing"),
        "w/o interleaving": PicassoConfig().without("interleaving"),
        "w/o caching": PicassoConfig().without("caching"),
        "PICASSO(Base)": PicassoConfig.base(),
    }
    reports = {}
    for name, config in variants.items():
        executor = PicassoExecutor(model, cluster, config)
        reports[name] = executor.run(batch, iterations=3)

    full = reports["PICASSO"].ips
    print(f"{'variant':18s} {'IPS':>9s} {'SM util':>8s} "
          f"{'PCIe GB/s':>10s} {'net Gbps':>9s} {'vs full':>8s}")
    for name, report in reports.items():
        print(f"{name:18s} {report.ips:>9,.0f} "
              f"{report.sm_utilization:>8.0%} "
              f"{report.pcie_gbps:>10.2f} {report.net_gbps:>9.2f} "
              f"{report.ips / full - 1:>+8.0%}")


if __name__ == "__main__":
    main()
