"""Auto-tune interleaving parameters from warm-up profiles.

The paper sizes Eq. 2/3 "empirically or experimentally from warm-up
iterations"; this example runs the :class:`~repro.core.AutoTuner` on
the CAN production workload and compares the tuned configuration with
the analytic plan, then renders the pipeline as an ASCII Gantt chart.

Run:  python examples/autotune_workload.py
"""

from repro.core import AutoTuner, PicassoExecutor
from repro.data import product2
from repro.hardware import eflops_cluster
from repro.models import can
from repro.sim.export import ascii_gantt


def main() -> None:
    model = can(product2(0.05))
    cluster = eflops_cluster(num_nodes=16)
    batch = 12_000

    analytic = PicassoExecutor(model, cluster)
    analytic_report = analytic.run(batch, iterations=2)
    plan = analytic.plan(batch)
    print(f"analytic plan: {plan.interleave_sets} interleave sets, "
          f"{plan.micro_batches} micro-batches "
          f"-> {analytic_report.ips:,.0f} IPS")

    tuner = AutoTuner(set_candidates=(1, 3, 5, 7),
                      micro_candidates=(1, 2, 3, 4),
                      warmup_iterations=2)
    result = tuner.tune(model, cluster, batch)
    print(f"tuned plan:    {result.interleave_sets} interleave sets, "
          f"{result.micro_batches} micro-batches "
          f"-> {result.best_ips:,.0f} IPS "
          f"({result.best_ips / analytic_report.ips - 1:+.1%})")

    print("\nprofile grid:")
    for trial in result.trials:
        print(f"  sets={trial['interleave_sets']} "
              f"micro={trial['micro_batches']}: "
              f"{trial['ips']:,.0f} IPS")

    report = PicassoExecutor(model, cluster, result.best_config).run(
        batch, iterations=2)
    print("\npipeline timeline (tuned configuration):")
    print(ascii_gantt(report.result, width=68))


if __name__ == "__main__":
    main()
