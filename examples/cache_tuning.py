"""Tune HybridHash: watch Algorithm 1 run and size Hot-storage (Tab. VI).

Part 1 runs the real ``HybridHash`` (warm-up, frequency counting,
periodic hot-set flush) over a skewed ID stream and reports the
achieved hit ratio.  Part 2 sweeps the Hot-storage budget on the W&D
production workload and shows the marginal-returns effect.

Run:  python examples/cache_tuning.py
"""


from repro.core.caching import batch_size_penalty, expected_hit_ratio
from repro.data import product1
from repro.data.spec import FieldSpec
from repro.data.synthetic import FieldSampler
from repro.embedding import EmbeddingTable, HybridHash


def demo_hybrid_hash() -> None:
    """Algorithm 1 end to end on one skewed field."""
    field = FieldSpec(name="demo", vocab_size=200_000, embedding_dim=8,
                      zipf_exponent=1.2)
    sampler = FieldSampler(field, seed=1)
    table = EmbeddingTable(dim=field.embedding_dim, seed=1)
    cache = HybridHash(table, hot_bytes=4_000 * field.embedding_dim * 4,
                       warmup_iters=20, flush_iters=10)

    print("running HybridHash over a Zipf-skewed ID stream...")
    for _step in range(120):
        ids = sampler.sample_batch(512)
        cache.lookup(ids)
    print(f"  hot rows: {cache.hot_capacity_rows:,}  "
          f"distinct IDs seen: {cache.counter.distinct_ids():,}")
    print(f"  post-warm-up hit ratio: {cache.stats.hit_ratio:.1%} "
          f"({cache.stats.flushes} hot-set flushes)\n")


def sweep_hot_storage() -> None:
    """Tab. VI-style sizing on the W&D production dataset."""
    gib = float(1 << 30)
    dataset = product1()
    batch = 20_000
    device_budget = 16 * gib
    print(f"Hot-storage sweep on {dataset.name} (batch {batch:,}):")
    print(f"{'size':>7s} {'hit ratio':>10s} {'usable batch':>13s}")
    for label, size in [("256MB", 0.25 * gib), ("512MB", 0.5 * gib),
                        ("1GB", gib), ("2GB", 2 * gib), ("4GB", 4 * gib)]:
        plan = expected_hit_ratio(dataset, size, batch)
        penalty = batch_size_penalty(size, device_budget)
        print(f"{label:>7s} {plan.hit_ratio:>10.1%} "
              f"{int(batch * penalty):>13,}")
    print("\nnote the marginal hit-ratio gains past 2GB while the "
          "usable batch keeps shrinking - the paper settles on 1GB.")


if __name__ == "__main__":
    demo_hybrid_hash()
    sweep_hot_storage()
