"""Compare PICASSO against TF-PS / PyTorch / Horovod on DLRM (Fig. 10).

Reproduces the paper's public-benchmark comparison on one Gn6e node
(8x V100): same model, same dataset, four training systems, batch sizes
tuned per framework as in Tab. III.

Run:  python examples/compare_frameworks.py
"""

from repro.baselines import framework_by_name
from repro.core import PicassoExecutor
from repro.data import criteo
from repro.hardware import gn6e_cluster
from repro.models import dlrm

BATCHES = {"TF-PS": 6_000, "PyTorch": 7_000, "Horovod": 10_000,
           "PICASSO": 42_000}


def main() -> None:
    model = dlrm(criteo())
    cluster = gn6e_cluster(num_nodes=1)
    print(f"DLRM on Criteo ({model.dataset.total_parameters:.3g} "
          "embedding parameters), one 8-GPU node\n")
    print(f"{'system':10s} {'batch':>7s} {'IPS':>10s} "
          f"{'ms/iter':>8s} {'SM util':>8s}")

    results = {}
    for name in ("TF-PS", "PyTorch", "Horovod"):
        report = framework_by_name(name).run(model, cluster,
                                             BATCHES[name], iterations=3)
        results[name] = report
    results["PICASSO"] = PicassoExecutor(model, cluster).run(
        BATCHES["PICASSO"], iterations=3)

    for name, report in results.items():
        print(f"{name:10s} {BATCHES[name]:>7,} {report.ips:>10,.0f} "
              f"{report.seconds_per_iteration * 1000:>8.1f} "
              f"{report.sm_utilization:>8.0%}")

    best_baseline = max(results[name].ips
                        for name in ("PyTorch", "Horovod"))
    print("\nPICASSO speedup: "
          f"{results['PICASSO'].ips / results['TF-PS'].ips:.1f}x over "
          f"TF-PS, {results['PICASSO'].ips / best_baseline:.1f}x over "
          "the best collective baseline")


if __name__ == "__main__":
    main()
